"""Unit tests for the alternating-projection and Dykstra projectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.projection import (
    AlternatingProjector,
    DykstraProjector,
    ExactProjector,
    FeasibleRegion,
)


def _random_region(rng, n=30, d=2, epsilon=0.05) -> FeasibleRegion:
    weights = np.vstack([np.ones(n)] + [rng.random(n) + 0.2 for _ in range(d - 1)])
    return FeasibleRegion.balanced(weights, epsilon)


class TestAlternatingProjector:
    def test_convergent_mode_reaches_feasibility(self, rng):
        region = _random_region(rng)
        projector = AlternatingProjector(region, one_shot=False)
        point = rng.normal(size=region.num_vertices) * 3
        x = projector.project(point)
        assert region.contains(x, tolerance=1e-6)

    def test_one_shot_stays_in_box(self, rng):
        # One-shot sweeps trade feasibility for speed (the residual is
        # cleaned up at the end of GD), but the box constraint always holds
        # because the cube is the last set projected onto.
        region = _random_region(rng)
        projector = AlternatingProjector(region, one_shot=True)
        point = rng.normal(size=region.num_vertices) * 3
        x = projector.project(point)
        assert np.all(np.abs(x) <= 1.0 + 1e-12)

    def test_one_shot_band_projection_feasible_for_single_constraint(self, rng):
        # With one balance band and a point well inside the cube, a single
        # band projection followed by clipping is already feasible.
        region = _random_region(rng, d=1)
        projector = AlternatingProjector(region, one_shot=True, use_band_center=False)
        point = rng.uniform(-0.3, 0.3, size=region.num_vertices)
        x = projector.project(point)
        assert region.contains(x, tolerance=1e-6)

    def test_project_to_feasibility_always_feasible(self, rng):
        region = _random_region(rng, d=3)
        projector = AlternatingProjector(region, one_shot=True)
        point = rng.normal(size=region.num_vertices) * 5
        x = projector.project_to_feasibility(point)
        assert region.contains(x, tolerance=1e-6)

    def test_feasible_point_stays_feasible(self, rng):
        region = _random_region(rng)
        projector = AlternatingProjector(region, one_shot=False)
        x = projector.project(np.zeros(region.num_vertices))
        assert region.contains(x, tolerance=1e-9)

    def test_band_center_mode_hits_center(self, rng):
        n = 20
        weights = np.ones((1, n))
        region = FeasibleRegion.balanced(weights, epsilon=0.3)
        projector = AlternatingProjector(region, one_shot=True, use_band_center=True)
        point = rng.normal(size=n) * 0.3 + 0.2   # interior of the box
        x = projector.project(point)
        # Projection onto the central hyperplane => weighted sum ~ 0 when the
        # box projection does not truncate.
        assert abs(float(weights[0] @ x)) < 0.2

    def test_invalid_parameters(self, rng):
        region = _random_region(rng)
        with pytest.raises(ValueError):
            AlternatingProjector(region, max_rounds=0)
        with pytest.raises(ValueError):
            AlternatingProjector(region, tolerance=0.0)

    def test_dimension_mismatch(self, rng):
        region = _random_region(rng)
        with pytest.raises(ValueError):
            AlternatingProjector(region).project(np.zeros(5))


class TestDykstraProjector:
    def test_output_feasible(self, rng):
        region = _random_region(rng)
        projector = DykstraProjector(region)
        point = rng.normal(size=region.num_vertices) * 3
        x = projector.project(point)
        assert region.contains(x, tolerance=1e-5)

    def test_agrees_with_exact_projection(self, rng):
        region = _random_region(rng, n=15, epsilon=0.1)
        point = rng.normal(size=15) * 2
        dykstra = DykstraProjector(region, max_rounds=3000).project(point)
        exact = ExactProjector(region).project(point)
        assert np.allclose(dykstra, exact, atol=1e-3)

    def test_feasible_point_unchanged(self, rng):
        region = _random_region(rng)
        point = np.zeros(region.num_vertices)
        assert np.allclose(DykstraProjector(region).project(point), point, atol=1e-9)

    def test_closer_than_plain_alternating(self, rng):
        # Dykstra converges to the true projection; plain alternating
        # projections only to *some* feasible point, so Dykstra can never be
        # farther from the input.
        region = _random_region(rng, n=25, epsilon=0.05)
        point = rng.normal(size=25) * 2
        dykstra = DykstraProjector(region, max_rounds=3000).project(point)
        alternating = AlternatingProjector(region, one_shot=False,
                                           use_band_center=False).project(point)
        assert (np.linalg.norm(point - dykstra)
                <= np.linalg.norm(point - alternating) + 1e-6)

    def test_invalid_parameters(self, rng):
        region = _random_region(rng)
        with pytest.raises(ValueError):
            DykstraProjector(region, max_rounds=0)
        with pytest.raises(ValueError):
            DykstraProjector(region, tolerance=-1.0)

    def test_dimension_mismatch(self, rng):
        region = _random_region(rng)
        with pytest.raises(ValueError):
            DykstraProjector(region).project(np.zeros(3))
