"""Tests of the dynamic-graph engine: update layer, incremental metrics,
and the incremental repartitioner."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import GDConfig, GDPartitioner, recursive_bisection
from repro.dynamic import (
    DynamicGraph,
    IncrementalMetrics,
    IncrementalRepartitioner,
    UpdateBatch,
    read_update_batches,
    repair_config,
    write_update_batches,
)
from repro.dynamic.repartition import expand_hops
from repro.graphs import Graph, churn_trace, fb_like, standard_weights
from repro.graphs.generators import power_law_cluster_graph
from repro.partition import (
    Partition,
    cut_size,
    edge_locality,
    is_epsilon_balanced,
    max_imbalance,
)


def _random_batch(dynamic: DynamicGraph, rng: np.random.Generator,
                  edge_changes: int = 12,
                  weight_changes: int = 4) -> UpdateBatch:
    """A valid batch against the current state: deletions drawn from the
    live edge set, insertions avoiding it, positive-preserving deltas."""
    n = dynamic.num_vertices
    edges = dynamic.snapshot().edges
    delete_count = min(edge_changes, edges.shape[0])
    deletions = (edges[rng.choice(edges.shape[0], size=delete_count, replace=False)]
                 if delete_count else np.empty((0, 2), dtype=np.int64))
    blocked = {(int(u), int(v)) for u, v in deletions}
    insertions = []
    attempts = 0
    while len(insertions) < edge_changes and attempts < 50 * edge_changes:
        attempts += 1
        u, v = rng.integers(0, n, size=2)
        lo, hi = (int(min(u, v)), int(max(u, v)))
        if lo == hi or dynamic.has_edge(lo, hi) or (lo, hi) in blocked:
            continue
        blocked.add((lo, hi))
        insertions.append((lo, hi))
    vertices = rng.integers(0, n, size=weight_changes)
    deltas = rng.uniform(0.05, 0.4, size=(dynamic.num_dimensions, weight_changes))
    return UpdateBatch(insertions=np.asarray(insertions, dtype=np.int64).reshape(-1, 2),
                       deletions=deletions, weight_vertices=vertices,
                       weight_deltas=deltas)


@pytest.fixture
def small_dynamic() -> DynamicGraph:
    graph = power_law_cluster_graph(120, 4, 8.0, seed=3)
    return DynamicGraph(graph, standard_weights(graph, 2))


class TestDynamicGraph:
    def test_snapshot_matches_from_scratch_rebuild(self, small_dynamic):
        """The parity contract: after any batch sequence the snapshot is
        bit-identical to Graph.from_edges over the same edge set."""
        rng = np.random.default_rng(0)
        for _ in range(6):
            small_dynamic.apply(_random_batch(small_dynamic, rng))
            snapshot = small_dynamic.snapshot()
            rebuilt = Graph.from_edges(snapshot.num_vertices, snapshot.edges)
            np.testing.assert_array_equal(snapshot.edges, rebuilt.edges)
            np.testing.assert_array_equal(snapshot.indptr, rebuilt.indptr)
            np.testing.assert_array_equal(snapshot.indices, rebuilt.indices)

    def test_snapshots_are_immutable_history(self, small_dynamic):
        before = small_dynamic.snapshot()
        edges_before = before.edges.copy()
        rng = np.random.default_rng(1)
        small_dynamic.apply(_random_batch(small_dynamic, rng))
        np.testing.assert_array_equal(before.edges, edges_before)
        assert small_dynamic.snapshot() is not before

    def test_rejects_duplicate_insert(self, small_dynamic):
        existing = small_dynamic.snapshot().edges[:1]
        with pytest.raises(ValueError, match="already exists"):
            small_dynamic.apply(UpdateBatch(insertions=existing))

    def test_rejects_missing_delete(self, small_dynamic):
        n = small_dynamic.num_vertices
        missing = None
        for u in range(n):
            for v in range(u + 1, n):
                if not small_dynamic.has_edge(u, v):
                    missing = [[u, v]]
                    break
            if missing:
                break
        with pytest.raises(ValueError, match="does not exist"):
            small_dynamic.apply(UpdateBatch(deletions=missing))

    def test_rejects_insert_and_delete_of_same_edge(self, small_dynamic):
        edge = small_dynamic.snapshot().edges[:1]
        with pytest.raises(ValueError, match="both inserted and deleted"):
            small_dynamic.apply(UpdateBatch(insertions=edge, deletions=edge))

    def test_rejects_nonpositive_weight(self, small_dynamic):
        with pytest.raises(ValueError, match="strictly positive"):
            small_dynamic.apply(UpdateBatch(weight_vertices=[0],
                                            weight_deltas=[[-100.0], [0.0]]))

    def test_apply_is_atomic(self, small_dynamic):
        """A rejected batch leaves neither half applied: valid edge churn
        bundled with an invalid weight delta must not touch the graph."""
        n = small_dynamic.num_vertices
        fresh = next((u, v) for u in range(n) for v in range(u + 1, n)
                     if not small_dynamic.has_edge(u, v))
        edges_before = small_dynamic.num_edges
        weights_before = small_dynamic.weights.copy()
        with pytest.raises(ValueError, match="strictly positive"):
            small_dynamic.apply(UpdateBatch(
                insertions=[fresh], weight_vertices=[0],
                weight_deltas=[[-100.0], [0.0]]))
        assert not small_dynamic.has_edge(*fresh)
        assert small_dynamic.num_edges == edges_before
        np.testing.assert_array_equal(small_dynamic.weights, weights_before)
        # The corrected batch then applies cleanly.
        small_dynamic.apply(UpdateBatch(insertions=[fresh]))
        assert small_dynamic.has_edge(*fresh)

    def test_weight_deltas_accumulate_duplicates(self, small_dynamic):
        before = small_dynamic.weights[:, 5].copy()
        small_dynamic.apply(UpdateBatch(weight_vertices=[5, 5],
                                        weight_deltas=[[0.25, 0.5], [0.125, 0.25]]))
        np.testing.assert_allclose(small_dynamic.weights[:, 5],
                                   before + [0.75, 0.375])

    def test_self_loops_and_duplicates_dropped(self, small_dynamic):
        """Within-batch canonicalization mirrors Graph.from_edges."""
        n = small_dynamic.num_vertices
        fresh = None
        for u in range(n):
            for v in range(u + 1, n):
                if not small_dynamic.has_edge(u, v):
                    fresh = (u, v)
                    break
            if fresh:
                break
        edges_before = small_dynamic.num_edges
        canonical = small_dynamic.apply(UpdateBatch(
            insertions=[[3, 3], fresh, (fresh[1], fresh[0])]))
        assert canonical.insertions.shape == (1, 2)
        assert small_dynamic.num_edges == edges_before + 1


class TestIncrementalMetrics:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000), num_parts=st.integers(2, 5),
           num_batches=st.integers(1, 4))
    def test_matches_from_scratch_after_any_batches(self, seed, num_parts,
                                                    num_batches):
        """The ISSUE 5 property: incremental metrics after any update batch
        equal from-scratch metrics on the updated graph (cut exactly,
        weight sums to float tolerance)."""
        rng = np.random.default_rng(seed)
        graph = power_law_cluster_graph(60, 3, 6.0, seed=seed)
        dynamic = DynamicGraph(graph, standard_weights(graph, 2))
        assignment = rng.integers(0, num_parts, size=graph.num_vertices)
        metrics = IncrementalMetrics(dynamic, assignment, num_parts)
        for _ in range(num_batches):
            canonical = dynamic.apply(_random_batch(dynamic, rng, edge_changes=8))
            metrics.apply_batch(canonical)
            # Interleave repair-style moves with the batches.
            moved = rng.choice(graph.num_vertices,
                               size=rng.integers(0, 6), replace=False)
            if moved.size:
                metrics.move(moved, rng.integers(0, num_parts, size=moved.size))

        reference = Partition(graph=dynamic.snapshot(),
                              assignment=metrics.assignment,
                              num_parts=num_parts)
        assert metrics.cut_size == cut_size(reference)
        assert metrics.edge_locality_pct == edge_locality(reference)
        np.testing.assert_allclose(
            metrics.part_weights,
            reference.part_weights(dynamic.weights), rtol=0, atol=1e-9)
        assert abs(metrics.max_imbalance()
                   - max_imbalance(reference, dynamic.weights)) < 1e-9
        for epsilon in (0.01, 0.05, 0.5):
            assert (metrics.is_epsilon_balanced(epsilon)
                    == is_epsilon_balanced(reference, dynamic.weights, epsilon))

    def test_move_handles_both_endpoints_moving(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        dynamic = DynamicGraph(graph, np.ones((1, 4)))
        metrics = IncrementalMetrics(dynamic, [0, 0, 1, 1], 2)
        assert metrics.cut_size == 1
        # Swap the middle pair: the (1, 2) edge has both endpoints moving.
        metrics.move(np.array([1, 2]), np.array([1, 0]))
        reference = Partition(graph=graph,
                              assignment=np.array([0, 1, 0, 1]), num_parts=2)
        assert metrics.cut_size == cut_size(reference) == 3


class TestExpandHops:
    def test_hop_radius_on_a_path(self):
        graph = Graph.from_edges(7, [(i, i + 1) for i in range(6)])
        for hops, expected in ((0, [3]), (1, [2, 3, 4]), (2, [1, 2, 3, 4, 5])):
            mask = expand_hops(graph.indptr, graph.indices,
                               np.array([3]), hops, 7)
            assert sorted(np.flatnonzero(mask).tolist()) == expected

    def test_empty_seeds(self):
        graph = Graph.from_edges(3, [(0, 1)])
        mask = expand_hops(graph.indptr, graph.indices,
                           np.empty(0, dtype=np.int64), 3, 3)
        assert not mask.any()


@pytest.fixture(scope="module")
def churn_setup():
    """A partitioned fb-preset graph plus a short churn trace."""
    graph = fb_like(80, scale=0.4, seed=0)
    weights = standard_weights(graph, 2)
    config = GDConfig(iterations=40, seed=0)
    partition = GDPartitioner(epsilon=0.05, config=config).partition(graph, weights, 4)
    trace = churn_trace(graph, 3, 0.01, seed=1)
    return graph, weights, partition, config, trace


def _replay(graph, weights, partition, config, trace, **config_updates):
    dynamic = DynamicGraph(graph, weights)
    repartitioner = IncrementalRepartitioner(
        dynamic, partition.assignment, partition.num_parts, epsilon=0.05,
        config=config.with_updates(**config_updates) if config_updates else config)
    reports = [repartitioner.apply(UpdateBatch(insertions=ins, deletions=dels))
               for ins, dels in trace]
    return repartitioner, reports


class TestIncrementalRepartitioner:
    def test_repair_is_deterministic_across_backends(self, churn_setup):
        """The ISSUE 5 determinism bar: the repaired assignment after every
        batch is bit-identical across serial/thread/process/batched."""
        graph, weights, partition, config, trace = churn_setup
        assignments = {}
        for backend in ("serial", "thread", "process", "batched"):
            repartitioner, reports = _replay(
                graph, weights, partition, config, trace,
                parallelism=backend,
                max_workers=2 if backend in ("thread", "process") else None)
            assert any(report.mode == "repair" for report in reports)
            assignments[backend] = repartitioner.assignment
        reference = assignments["serial"]
        for backend, assignment in assignments.items():
            np.testing.assert_array_equal(assignment, reference,
                                          err_msg=f"backend {backend}")

    def test_repair_is_reproducible(self, churn_setup):
        graph, weights, partition, config, trace = churn_setup
        first, _ = _replay(graph, weights, partition, config, trace)
        second, _ = _replay(graph, weights, partition, config, trace)
        np.testing.assert_array_equal(first.assignment, second.assignment)

    def test_frozen_vertices_keep_their_part(self, churn_setup):
        """The freeze rule's contract: only vertices within h hops of a
        touched edge may move."""
        graph, weights, partition, config, trace = churn_setup
        dynamic = DynamicGraph(graph, weights)
        repartitioner = IncrementalRepartitioner(
            dynamic, partition.assignment, partition.num_parts, epsilon=0.05,
            config=config.with_updates(repartition_hops=1))
        before = repartitioner.assignment
        insertions, deletions = trace[0]
        batch = UpdateBatch(insertions=insertions, deletions=deletions)
        report = repartitioner.apply(batch)
        assert report.mode == "repair"
        released = expand_hops(dynamic.indptr, dynamic.indices,
                               batch.touched_vertices(), 1, graph.num_vertices)
        after = repartitioner.assignment
        np.testing.assert_array_equal(after[~released], before[~released])
        assert report.moved_vertices == int(np.count_nonzero(after != before))

    def test_repair_keeps_quality_and_balance(self, churn_setup):
        graph, weights, partition, config, trace = churn_setup
        repartitioner, reports = _replay(graph, weights, partition, config, trace)
        for report in reports:
            assert report.balanced
            assert report.gd_iterations < report.full_recompute_iterations
        final = repartitioner.partition()
        assert is_epsilon_balanced(final, repartitioner.dynamic.weights, 0.05)
        # Still in the same quality regime as the pre-churn partition.
        assert reports[-1].edge_locality_pct > edge_locality(partition) - 5.0

    def test_metrics_stay_consistent_through_repairs(self, churn_setup):
        graph, weights, partition, config, trace = churn_setup
        repartitioner, _ = _replay(graph, weights, partition, config, trace)
        reference = repartitioner.partition()
        assert repartitioner.metrics.cut_size == cut_size(reference)
        np.testing.assert_allclose(
            repartitioner.metrics.part_weights,
            reference.part_weights(repartitioner.dynamic.weights), atol=1e-9)

    def test_heavy_damage_falls_back_to_recompute(self, churn_setup):
        graph, weights, partition, config, _ = churn_setup
        dynamic = DynamicGraph(graph, weights)
        repartitioner = IncrementalRepartitioner(
            dynamic, partition.assignment, partition.num_parts, epsilon=0.05,
            config=config)
        # A destructive batch: rewire 30% of the edges across the graph.
        trace = churn_trace(graph, 1, 0.3, seed=9)
        insertions, deletions = trace[0]
        report = repartitioner.apply(
            UpdateBatch(insertions=insertions, deletions=deletions))
        assert report.mode == "recompute"
        assert report.gd_iterations == report.full_recompute_iterations
        # The recompute result equals a from-scratch solve bit for bit.
        expected = recursive_bisection(dynamic.snapshot(), dynamic.weights,
                                       partition.num_parts, 0.05, config)
        np.testing.assert_array_equal(repartitioner.assignment,
                                      expected.assignment)

    def test_harmless_batch_is_a_noop(self, churn_setup):
        """Intra-part insertions do no damage and trigger no GD work."""
        graph, weights, partition, config, _ = churn_setup
        dynamic = DynamicGraph(graph, weights)
        repartitioner = IncrementalRepartitioner(
            dynamic, partition.assignment, partition.num_parts, epsilon=0.05,
            config=config)
        part0 = np.flatnonzero(partition.assignment == 0)
        insertions = []
        for u in part0:
            for v in part0:
                if u < v and not dynamic.has_edge(int(u), int(v)):
                    insertions.append((int(u), int(v)))
                if len(insertions) >= 5:
                    break
            if len(insertions) >= 5:
                break
        before = repartitioner.assignment
        report = repartitioner.apply(UpdateBatch(insertions=insertions))
        assert report.mode == "noop"
        assert report.gd_iterations == 0
        np.testing.assert_array_equal(repartitioner.assignment, before)

    def test_repair_config_shape(self):
        config = GDConfig(iterations=80, repartition_iterations=7)
        derived = repair_config(config)
        assert derived.iterations == 7
        assert derived.compaction and not derived.multilevel
        assert derived.noise_std == 0.0
        assert derived.fixing_start_fraction == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="repartition_hops"):
            GDConfig(repartition_hops=-1)
        with pytest.raises(ValueError, match="repartition_damage_threshold"):
            GDConfig(repartition_damage_threshold=0.0)
        with pytest.raises(ValueError, match="repartition_iterations"):
            GDConfig(repartition_iterations=0)


class TestTraceRoundTrip:
    def test_batches_survive_a_round_trip(self, tmp_path):
        batches = [
            UpdateBatch(insertions=[[0, 3], [1, 2]], deletions=[[4, 5]]),
            UpdateBatch(weight_vertices=[7, 2],
                        weight_deltas=[[0.5, -0.25], [0.0, 1.5]]),
        ]
        path = tmp_path / "trace.txt"
        # An interspersed empty batch is dropped by the writer, not
        # serialized as a dangling separator.
        write_update_batches([batches[0], UpdateBatch(), batches[1]], path)
        loaded = read_update_batches(path, num_dimensions=2)
        assert len(loaded) == len(batches)
        for original, parsed in zip(batches, loaded):
            np.testing.assert_array_equal(original.insertions, parsed.insertions)
            np.testing.assert_array_equal(original.deletions, parsed.deletions)
            # The reader canonicalizes weight-vertex order; compare the
            # per-vertex deltas instead of the raw column order.
            order_original = np.argsort(original.weight_vertices)
            order_parsed = np.argsort(parsed.weight_vertices)
            np.testing.assert_array_equal(
                original.weight_vertices[order_original],
                parsed.weight_vertices[order_parsed])
            if original.weight_vertices.size:
                np.testing.assert_allclose(
                    original.weight_deltas[:, order_original],
                    parsed.weight_deltas[:, order_parsed])

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("+ 1 2\nnot a directive\n", encoding="utf-8")
        with pytest.raises(ValueError, match="malformed update line"):
            read_update_batches(path)

    def test_no_spurious_empty_batches(self, tmp_path):
        """A trailing separator, double separators, or a comment-only file
        must not produce no-op batches."""
        path = tmp_path / "trace.txt"
        path.write_text("+ 0 1\n%%\n%%\n- 0 1\n%%\n", encoding="utf-8")
        loaded = read_update_batches(path)
        assert len(loaded) == 2
        path.write_text("# nothing here\n", encoding="utf-8")
        assert read_update_batches(path) == []


class TestChurnTrace:
    def test_trace_is_deterministic_and_consistent(self):
        graph = power_law_cluster_graph(200, 4, 10.0, seed=0)
        first = churn_trace(graph, 4, 0.02, seed=5)
        second = churn_trace(graph, 4, 0.02, seed=5)
        dynamic = DynamicGraph(graph, np.ones((1, graph.num_vertices)))
        for (ins_a, del_a), (ins_b, del_b) in zip(first, second):
            np.testing.assert_array_equal(ins_a, ins_b)
            np.testing.assert_array_equal(del_a, del_b)
            # Consistency: the batch applies cleanly against the live state.
            dynamic.apply(UpdateBatch(insertions=ins_a, deletions=del_a))

    def test_trace_preserves_edge_count(self):
        graph = power_law_cluster_graph(150, 3, 8.0, seed=2)
        dynamic = DynamicGraph(graph, np.ones((1, graph.num_vertices)))
        for insertions, deletions in churn_trace(graph, 3, 0.05, seed=3):
            assert insertions.shape == deletions.shape
            dynamic.apply(UpdateBatch(insertions=insertions, deletions=deletions))
        assert dynamic.num_edges == graph.num_edges

    def test_terminates_on_a_complete_graph(self):
        """Regression: with no fresh edge slot available (a batch never
        re-inserts an edge it deletes), the insertion sampler must give up
        after its attempt budget instead of spinning forever."""
        from repro.graphs.generators import complete_graph

        graph = complete_graph(6)
        dynamic = DynamicGraph(graph, np.ones((1, 6)))
        for insertions, deletions in churn_trace(graph, 2, 0.1, seed=0):
            assert insertions.shape[0] <= deletions.shape[0]
            dynamic.apply(UpdateBatch(insertions=insertions, deletions=deletions))
