"""Unit tests for randomized rounding and balance repair."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import balance_repair, deterministic_round, randomized_round
from repro.graphs import Graph, unit_weights
from repro.partition import Partition, is_epsilon_balanced


class TestRandomizedRound:
    def test_integral_input_unchanged(self, rng):
        x = np.array([1.0, -1.0, 1.0, -1.0])
        assert np.array_equal(randomized_round(x, rng), x)

    def test_output_is_plus_minus_one(self, rng):
        x = rng.uniform(-1, 1, size=100)
        sides = randomized_round(x, rng)
        assert set(np.unique(sides)).issubset({-1.0, 1.0})

    def test_expectation_matches_fraction(self):
        x = np.full(20000, 0.5)  # P(+1) = 0.75
        sides = randomized_round(x, np.random.default_rng(0))
        assert np.isclose((sides == 1).mean(), 0.75, atol=0.02)

    def test_zero_gives_fair_coin(self):
        sides = randomized_round(np.zeros(20000), np.random.default_rng(1))
        assert np.isclose((sides == 1).mean(), 0.5, atol=0.02)

    def test_default_rng_is_deterministic(self):
        x = np.linspace(-1, 1, 50)
        assert np.array_equal(randomized_round(x), randomized_round(x))


class TestDeterministicRound:
    def test_sign_rounding(self):
        assert np.array_equal(deterministic_round(np.array([0.3, -0.2, 0.0])),
                              [1.0, -1.0, 1.0])

    def test_idempotent(self):
        x = np.array([0.9, -0.9])
        assert np.array_equal(deterministic_round(deterministic_round(x)),
                              deterministic_round(x))


class TestBalanceRepair:
    def test_repairs_unit_weight_imbalance(self, clique_ring):
        graph = clique_ring
        weights = unit_weights(graph)[None, :]
        sides = np.ones(graph.num_vertices)   # everything on one side
        repaired = balance_repair(graph, sides, weights, epsilon=0.05)
        partition = Partition.from_sides(graph, repaired)
        assert is_epsilon_balanced(partition, weights, epsilon=0.05)

    def test_repairs_two_dimensions(self, social_graph, social_weights):
        rng = np.random.default_rng(3)
        sides = np.where(rng.random(social_graph.num_vertices) < 0.8, 1.0, -1.0)
        repaired = balance_repair(social_graph, sides, social_weights, epsilon=0.05)
        partition = Partition.from_sides(social_graph, repaired)
        assert is_epsilon_balanced(partition, social_weights, epsilon=0.06)

    def test_balanced_input_unchanged(self, clique_ring):
        graph = clique_ring
        weights = unit_weights(graph)[None, :]
        sides = np.where(np.arange(graph.num_vertices) % 2 == 0, 1.0, -1.0)
        repaired = balance_repair(graph, sides, weights, epsilon=0.1)
        assert np.array_equal(repaired, sides)

    def test_never_increases_total_violation(self, social_graph, social_weights):
        rng = np.random.default_rng(5)
        sides = np.where(rng.random(social_graph.num_vertices) < 0.9, 1.0, -1.0)
        totals = social_weights.sum(axis=1)
        slack = 0.03 * totals

        def violation(s):
            return float((np.maximum(np.abs(social_weights @ s) - slack, 0) / totals).sum())

        repaired = balance_repair(social_graph, sides, social_weights, epsilon=0.03)
        assert violation(repaired) <= violation(sides) + 1e-12

    def test_respects_max_moves(self, clique_ring):
        graph = clique_ring
        weights = unit_weights(graph)[None, :]
        sides = np.ones(graph.num_vertices)
        repaired = balance_repair(graph, sides, weights, epsilon=0.01, max_moves=3)
        # Only 3 vertices may have been flipped.
        assert int((repaired != sides).sum()) <= 3

    def test_empty_graph(self):
        graph = Graph.from_edges(0, [])
        repaired = balance_repair(graph, np.empty(0), np.empty((1, 0)), epsilon=0.1)
        assert repaired.size == 0

    def test_movable_none_is_bit_identical(self, social_graph, social_weights):
        rng = np.random.default_rng(7)
        sides = np.where(rng.random(social_graph.num_vertices) < 0.8, 1.0, -1.0)
        default = balance_repair(social_graph, sides, social_weights, epsilon=0.05)
        all_movable = balance_repair(social_graph, sides, social_weights, epsilon=0.05,
                                     movable=np.ones(social_graph.num_vertices, bool))
        np.testing.assert_array_equal(default, all_movable)

    def test_movable_mask_confines_flips(self, clique_ring):
        graph = clique_ring
        weights = unit_weights(graph)[None, :]
        sides = np.ones(graph.num_vertices)
        movable = np.zeros(graph.num_vertices, dtype=bool)
        movable[:graph.num_vertices // 2] = True
        repaired = balance_repair(graph, sides, weights, epsilon=0.05,
                                  movable=movable)
        assert np.array_equal(repaired[~movable], sides[~movable])

    def test_movable_shape_validated(self, clique_ring):
        graph = clique_ring
        weights = unit_weights(graph)[None, :]
        with pytest.raises(ValueError, match="movable"):
            balance_repair(graph, np.ones(graph.num_vertices), weights,
                           epsilon=0.05, movable=np.ones(3, dtype=bool))

    def test_prefers_low_damage_moves(self, two_cliques_graph):
        # Starting from everything in one part, the repair must end balanced;
        # with two 5-cliques the best split keeps the cliques intact.
        graph = two_cliques_graph
        weights = unit_weights(graph)[None, :]
        sides = np.ones(graph.num_vertices)
        repaired = balance_repair(graph, sides, weights, epsilon=0.05)
        partition = Partition.from_sides(graph, repaired)
        assert is_epsilon_balanced(partition, weights, epsilon=0.05)
