"""Unit tests for the Partition data model and validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import standard_weights
from repro.partition import Partition
from repro.partition.validation import (
    validate_epsilon,
    validate_num_parts,
    validate_partition,
    validate_weights,
)


class TestPartitionConstruction:
    def test_basic(self, triangle_graph):
        partition = Partition(graph=triangle_graph, assignment=np.array([0, 0, 1]), num_parts=2)
        assert partition.num_parts == 2

    def test_wrong_length_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            Partition(graph=triangle_graph, assignment=np.array([0, 1]), num_parts=2)

    def test_out_of_range_part_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            Partition(graph=triangle_graph, assignment=np.array([0, 1, 2]), num_parts=2)

    def test_negative_part_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            Partition(graph=triangle_graph, assignment=np.array([0, -1, 1]), num_parts=2)

    def test_zero_parts_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            Partition(graph=triangle_graph, assignment=np.zeros(3, dtype=int), num_parts=0)

    def test_trivial(self, path_graph):
        partition = Partition.trivial(path_graph)
        assert partition.num_parts == 1
        assert np.all(partition.assignment == 0)

    def test_empty_parts_allowed(self, triangle_graph):
        partition = Partition(graph=triangle_graph, assignment=np.zeros(3, dtype=int),
                              num_parts=4)
        assert np.array_equal(partition.part_sizes(), [3, 0, 0, 0])


class TestFromSides:
    def test_plus_minus_one(self, path_graph):
        sides = np.array([1, 1, 1, -1, -1, -1])
        partition = Partition.from_sides(path_graph, sides)
        assert np.array_equal(partition.assignment, [0, 0, 0, 1, 1, 1])

    def test_zero_one(self, path_graph):
        sides = np.array([0, 0, 1, 1, 0, 1])
        partition = Partition.from_sides(path_graph, sides)
        assert np.array_equal(partition.assignment, sides)

    def test_invalid_values_rejected(self, path_graph):
        with pytest.raises(ValueError):
            Partition.from_sides(path_graph, np.array([2, 0, 0, 0, 0, 0]))

    def test_wrong_length_rejected(self, path_graph):
        with pytest.raises(ValueError):
            Partition.from_sides(path_graph, np.array([1, -1]))


class TestViews:
    def test_parts(self, path_graph):
        partition = Partition(graph=path_graph, assignment=np.array([0, 0, 1, 1, 2, 2]),
                              num_parts=3)
        parts = partition.parts()
        assert len(parts) == 3
        assert np.array_equal(parts[1], [2, 3])

    def test_part_sizes(self, path_graph):
        partition = Partition(graph=path_graph, assignment=np.array([0, 0, 0, 1, 1, 1]),
                              num_parts=2)
        assert np.array_equal(partition.part_sizes(), [3, 3])

    def test_part_weights_single_dimension(self, path_graph):
        partition = Partition(graph=path_graph, assignment=np.array([0, 0, 0, 1, 1, 1]),
                              num_parts=2)
        weights = np.arange(1.0, 7.0)
        assert np.array_equal(partition.part_weights(weights), [6.0, 15.0])

    def test_part_weights_matrix(self, path_graph):
        partition = Partition(graph=path_graph, assignment=np.array([0, 1, 0, 1, 0, 1]),
                              num_parts=2)
        weights = standard_weights(path_graph, 2)
        totals = partition.part_weights(weights)
        assert totals.shape == (2, 2)
        assert np.isclose(totals.sum(), weights.sum())

    def test_part_weights_wrong_shape(self, path_graph):
        partition = Partition.trivial(path_graph)
        with pytest.raises(ValueError):
            partition.part_weights(np.ones(3))

    def test_side_vector(self, path_graph):
        partition = Partition(graph=path_graph, assignment=np.array([0, 1, 0, 1, 0, 1]),
                              num_parts=2)
        sides = partition.side_vector()
        assert np.array_equal(sides, [1, -1, 1, -1, 1, -1])

    def test_side_vector_requires_two_parts(self, path_graph):
        partition = Partition.trivial(path_graph)
        with pytest.raises(ValueError):
            partition.side_vector()

    def test_relabel(self, path_graph):
        partition = Partition(graph=path_graph, assignment=np.array([0, 0, 1, 1, 2, 2]),
                              num_parts=3)
        relabelled = partition.relabel([2, 0, 1], num_parts=3)
        assert np.array_equal(relabelled.assignment, [2, 2, 0, 0, 1, 1])

    def test_relabel_wrong_mapping_length(self, path_graph):
        partition = Partition.trivial(path_graph)
        with pytest.raises(ValueError):
            partition.relabel([0, 1], num_parts=2)

    def test_equality(self, path_graph):
        a = Partition(graph=path_graph, assignment=np.array([0, 0, 0, 1, 1, 1]), num_parts=2)
        b = Partition(graph=path_graph, assignment=np.array([0, 0, 0, 1, 1, 1]), num_parts=2)
        c = Partition(graph=path_graph, assignment=np.array([1, 0, 0, 1, 1, 1]), num_parts=2)
        assert a == b
        assert a != c


class TestValidationHelpers:
    def test_validate_weights_promotes_vector(self, triangle_graph):
        matrix = validate_weights(triangle_graph, np.ones(3))
        assert matrix.shape == (1, 3)

    def test_validate_weights_rejects_nonpositive(self, triangle_graph):
        with pytest.raises(ValueError):
            validate_weights(triangle_graph, np.array([1.0, 0.0, 1.0]))

    def test_validate_weights_rejects_nan(self, triangle_graph):
        with pytest.raises(ValueError):
            validate_weights(triangle_graph, np.array([1.0, np.nan, 1.0]))

    def test_validate_weights_rejects_wrong_length(self, triangle_graph):
        with pytest.raises(ValueError):
            validate_weights(triangle_graph, np.ones(5))

    def test_validate_epsilon(self):
        assert validate_epsilon(0.05) == 0.05
        with pytest.raises(ValueError):
            validate_epsilon(0.0)
        with pytest.raises(ValueError):
            validate_epsilon(1.5)

    def test_validate_num_parts(self):
        assert validate_num_parts(4, 100) == 4
        with pytest.raises(ValueError):
            validate_num_parts(0, 100)
        with pytest.raises(ValueError):
            validate_num_parts(200, 100)

    def test_validate_partition_passes_through(self, triangle_graph):
        partition = Partition.trivial(triangle_graph)
        assert validate_partition(partition) is partition
