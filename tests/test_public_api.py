"""Tests of the curated public surface and the shared config conventions.

Covers: every name in ``repro.__all__`` resolves; the one-call
``partition_graph`` / ``evaluate`` veneer; the ``to_dict`` / ``from_dict``
/ ``from_args`` round-trip shared by :class:`GDConfig` and
:class:`ServeConfig`; and the deprecation shims (renamed fields and moved
top-level entry points keep working with a :class:`DeprecationWarning`).
"""

from __future__ import annotations

import argparse
import json
import warnings

import numpy as np
import pytest

import repro
from repro.core import ExecutionConfig, GDConfig
from repro.serve import ServeConfig


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_all_is_sorted_sanely(self):
        # No duplicates, and everything importable with a star import.
        assert len(repro.__all__) == len(set(repro.__all__))
        namespace = {}
        exec("from repro import *", namespace)
        missing = [n for n in repro.__all__ if n not in namespace]
        assert not missing

    def test_version_is_exported(self):
        assert repro.__version__
        assert "__version__" in repro.__all__

    def test_partition_graph_and_evaluate(self, two_cliques_graph):
        partition = repro.partition_graph(
            two_cliques_graph, 2, epsilon=0.1,
            config=GDConfig(iterations=30, seed=3))
        assert partition.num_parts == 2
        report = repro.evaluate(partition)
        assert set(report) == {"num_parts", "edge_locality_pct", "imbalance_pct"}
        assert report["num_parts"] == 2
        assert 0.0 <= report["edge_locality_pct"] <= 100.0
        assert len(report["imbalance_pct"]) == 2
        json.dumps(report)  # JSON-friendly by contract

    def test_partition_graph_custom_weights(self, two_cliques_graph):
        weights = np.ones((1, two_cliques_graph.num_vertices))
        partition = repro.partition_graph(
            two_cliques_graph, 2, weights=weights, epsilon=0.1,
            config=GDConfig(iterations=30, seed=3))
        report = repro.evaluate(partition, weights)
        assert len(report["imbalance_pct"]) == 1


class TestDeprecatedAliases:
    def test_top_level_gd_bisect_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.gd_bisect is deprecated"):
            fn = repro.gd_bisect
        assert fn is repro.core.gd_bisect

    def test_top_level_recursive_bisection_warns(self):
        with pytest.warns(DeprecationWarning, match="recursive_bisection"):
            fn = repro.recursive_bisection
        assert fn is repro.core.recursive_bisection

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError, match="no attribute 'nonsense'"):
            repro.nonsense

    def test_deprecated_names_left_out_of_all(self):
        assert "gd_bisect" not in repro.__all__
        assert "recursive_bisection" not in repro.__all__


class TestRenameShims:
    def test_gdconfig_old_keyword_remaps(self):
        with pytest.warns(DeprecationWarning, match="'projection' was renamed"):
            config = GDConfig(projection="exact")
        assert config.projection_method == "exact"

    def test_gdconfig_old_attribute_forwards(self):
        config = GDConfig(projection_method="dykstra")
        with pytest.warns(DeprecationWarning, match="renamed to projection_method"):
            assert config.projection == "dykstra"

    def test_gdconfig_both_names_is_error(self):
        with pytest.raises(TypeError, match="both 'projection'"):
            GDConfig(projection="exact", projection_method="exact")

    def test_gdconfig_with_updates_accepts_old_name(self):
        with pytest.warns(DeprecationWarning):
            config = GDConfig().with_updates(projection="exact")
        assert config.projection_method == "exact"

    def test_serveconfig_old_keyword_remaps(self):
        with pytest.warns(DeprecationWarning, match="shutdown_drain_seconds"):
            config = ServeConfig(shutdown_drain_seconds=5.0)
        assert config.drain_seconds == 5.0

    def test_serveconfig_old_attribute_forwards(self):
        config = ServeConfig(drain_seconds=2.5)
        with pytest.warns(DeprecationWarning):
            assert config.shutdown_drain_seconds == 2.5


class TestConfigRoundTrip:
    def test_gdconfig_dict_round_trip(self):
        config = GDConfig(iterations=42, projection_method="exact", seed=9,
                          kernel_backend="fused", compaction=True)
        restored = GDConfig.from_dict(config.to_dict())
        assert restored == config

    def test_gdconfig_to_dict_is_json_serializable(self):
        as_json = json.dumps(GDConfig().to_dict())
        assert GDConfig.from_dict(json.loads(as_json)) == GDConfig()

    def test_serveconfig_dict_round_trip(self):
        config = ServeConfig(port=0, epsilon=0.2, drain_seconds=1.0)
        assert ServeConfig.from_dict(config.to_dict()) == config

    def test_from_dict_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown GDConfig fields: iteration"):
            GDConfig.from_dict({"iteration": 5})

    def test_from_dict_accepts_renamed_field_with_warning(self):
        with pytest.warns(DeprecationWarning, match="'projection' was renamed"):
            config = GDConfig.from_dict({"projection": "exact", "seed": 4})
        assert config.projection_method == "exact"
        assert config.seed == 4
        with pytest.warns(DeprecationWarning, match="shutdown_drain_seconds"):
            serve = ServeConfig.from_dict({"shutdown_drain_seconds": 3.0})
        assert serve.drain_seconds == 3.0

    def test_from_args_takes_matching_dests(self):
        namespace = argparse.Namespace(
            iterations=7, seed=2, kernel_backend="fused",
            projection_method="alternating_oneshot",
            dataset="fb-80", output=None)  # non-field entries ignored
        config = GDConfig.from_args(namespace)
        assert (config.iterations, config.seed, config.kernel_backend) == (7, 2, "fused")

    def test_from_args_skips_none_and_applies_aliases(self):
        namespace = argparse.Namespace(
            iterations=None, workers=3, hops=4, damage_threshold=0.5,
            repair_iterations=6)
        config = GDConfig.from_args(namespace)
        assert config.iterations == GDConfig().iterations  # None → default
        assert config.max_workers == 3
        assert config.repartition_hops == 4
        assert config.repartition_damage_threshold == 0.5
        assert config.repartition_iterations == 6

    def test_from_args_overrides_win(self):
        namespace = argparse.Namespace(iterations=7, seed=2)
        config = GDConfig.from_args(namespace, seed=11)
        assert (config.iterations, config.seed) == (7, 11)

    def test_serveconfig_from_args(self):
        namespace = argparse.Namespace(host="0.0.0.0", port=0, epsilon=0.1,
                                       verbose=True)
        config = ServeConfig.from_args(namespace)
        assert (config.host, config.port, config.epsilon) == ("0.0.0.0", 0, 0.1)

    def test_from_args_with_execution_override_owns_the_routing(self):
        # The CLI pattern: execution built separately from the same
        # namespace; from_args must not also collect the moved names
        # (that would trip the both-names TypeError), and no
        # deprecation warning fires on this modern path.
        namespace = argparse.Namespace(iterations=7, workers=3, parallelism="thread")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = GDConfig.from_args(
                namespace, execution=ExecutionConfig.from_args(namespace))
        assert config.execution.parallelism == "thread"
        assert config.execution.max_workers == 3


class TestExecutionConfig:
    def test_defaults_and_round_trip(self):
        config = ExecutionConfig(parallelism="shm", max_workers=4,
                                 task_timeout_seconds=30.0, task_retries=1,
                                 shm_min_wave_tasks=3, shm_segment_prefix="t-shm")
        assert ExecutionConfig.from_dict(config.to_dict()) == config
        json.dumps(config.to_dict())

    def test_validation(self):
        with pytest.raises(ValueError, match="parallelism"):
            ExecutionConfig(parallelism="fork-bomb")
        with pytest.raises(ValueError, match="max_workers"):
            ExecutionConfig(max_workers=0)
        with pytest.raises(ValueError, match="shm_min_wave_tasks"):
            ExecutionConfig(shm_min_wave_tasks=0)
        with pytest.raises(ValueError, match="shm_segment_prefix"):
            ExecutionConfig(shm_segment_prefix="")

    def test_gdconfig_nests_execution_in_dict_round_trip(self):
        config = GDConfig(seed=5, execution=ExecutionConfig(parallelism="shm",
                                                            max_workers=2))
        as_dict = config.to_dict()
        assert as_dict["execution"]["parallelism"] == "shm"
        restored = GDConfig.from_dict(json.loads(json.dumps(as_dict)))
        assert restored == config
        assert isinstance(restored.execution, ExecutionConfig)


class TestMoveShims:
    """The PR's ``install_move_shims`` deprecation machinery on GDConfig."""

    def test_flat_name_warns_and_lands_in_execution(self):
        with pytest.warns(DeprecationWarning, match="moved to GDConfig.execution"):
            config = GDConfig(parallelism="thread", max_workers=2)
        assert config.execution.parallelism == "thread"
        assert config.execution.max_workers == 2

    def test_flat_attribute_access_warns_and_forwards(self):
        config = GDConfig(execution=ExecutionConfig(parallelism="process",
                                                    task_retries=5))
        with pytest.warns(DeprecationWarning, match="moved to"):
            assert config.parallelism == "process"
        with pytest.warns(DeprecationWarning, match="moved to"):
            assert config.task_retries == 5

    def test_both_names_is_a_type_error(self):
        with pytest.raises(TypeError, match="both"):
            GDConfig(parallelism="thread",
                     execution=ExecutionConfig(parallelism="process"))

    def test_with_updates_remaps_flat_names(self):
        config = GDConfig(execution=ExecutionConfig(max_workers=8))
        with pytest.warns(DeprecationWarning, match="moved to"):
            updated = config.with_updates(parallelism="shm")
        assert updated.execution.parallelism == "shm"
        assert updated.execution.max_workers == 8  # untouched sibling field

    def test_from_dict_accepts_old_flat_keys(self):
        # Pre-redesign serialized configs keep loading.
        with pytest.warns(DeprecationWarning, match="moved to"):
            config = GDConfig.from_dict({"seed": 7, "parallelism": "batched",
                                         "task_retries": 1})
        assert config.seed == 7
        assert config.execution.parallelism == "batched"
        assert config.execution.task_retries == 1

    def test_execution_dict_is_coerced(self):
        # from_dict of a nested mapping (the JSON round-trip path).
        config = GDConfig(execution={"parallelism": "thread", "max_workers": 2})
        assert isinstance(config.execution, ExecutionConfig)
        assert config.execution.max_workers == 2


class TestRunFacade:
    def test_run_matches_partition_graph_bisection(self, two_cliques_graph):
        gd = GDConfig(iterations=30, seed=3)
        reference = repro.partition_graph(two_cliques_graph, 2, epsilon=0.1,
                                          config=gd)
        result = repro.run(two_cliques_graph, 2, epsilon=0.1, gd=gd)
        assert isinstance(result, repro.RunResult)
        assert np.array_equal(result.partition.assignment, reference.assignment)
        # 2-way runs surface the full solver diagnostics.
        assert result.bisection is not None
        assert result.bisection.kernel_stats is not None
        assert result.executor_stats is None
        assert result.elapsed_seconds > 0.0

    def test_run_kway_carries_executor_stats(self, two_cliques_graph):
        gd = GDConfig(iterations=15, seed=3)
        reference = repro.partition_graph(two_cliques_graph, 4, epsilon=0.1,
                                          config=gd)
        result = repro.run(two_cliques_graph, 4, epsilon=0.1, gd=gd)
        assert np.array_equal(result.partition.assignment, reference.assignment)
        assert result.bisection is None
        assert result.executor_stats is not None
        assert result.executor_stats.retries == 0
        assert result.executor_stats.shm.waves == 0  # serial default: no arenas

    def test_run_execution_override_wins(self, two_cliques_graph):
        gd = GDConfig(iterations=15, seed=3)
        result = repro.run(two_cliques_graph, 4, epsilon=0.1, gd=gd,
                           execution=ExecutionConfig(parallelism="thread",
                                                     max_workers=2))
        assert result.execution.parallelism == "thread"
        assert result.gd.execution.parallelism == "thread"
        reference = repro.run(two_cliques_graph, 4, epsilon=0.1, gd=gd)
        assert np.array_equal(result.partition.assignment,
                              reference.partition.assignment)
