"""Property-based tests for the graph substrate, metrics, and rounding."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import balance_repair, randomized_round
from repro.graphs import Graph, unit_weights
from repro.partition import (
    Partition,
    cut_size,
    edge_locality,
    imbalance,
    is_epsilon_balanced,
    objective_value,
)


@st.composite
def random_graphs(draw, max_vertices=30, max_edges=80):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=num_edges, max_size=num_edges))
    return Graph.from_edges(n, edges)


@st.composite
def graphs_with_assignments(draw, max_parts=4):
    graph = draw(random_graphs())
    num_parts = draw(st.integers(min_value=1, max_value=max_parts))
    assignment = draw(hnp.arrays(np.int64, graph.num_vertices,
                                 elements=st.integers(0, num_parts - 1)))
    return graph, Partition(graph=graph, assignment=assignment, num_parts=num_parts)


class TestGraphInvariants:
    @settings(max_examples=80)
    @given(graph=random_graphs())
    def test_degree_sum_is_twice_edges(self, graph):
        assert graph.degrees.sum() == 2 * graph.num_edges

    @settings(max_examples=80)
    @given(graph=random_graphs())
    def test_edges_unique_and_canonical(self, graph):
        edges = {tuple(edge) for edge in graph.edges.tolist()}
        assert len(edges) == graph.num_edges
        assert all(u < v for u, v in edges)

    @settings(max_examples=50)
    @given(graph=random_graphs())
    def test_adjacency_symmetric(self, graph):
        adjacency = graph.adjacency_matrix()
        assert (adjacency != adjacency.T).nnz == 0

    @settings(max_examples=50)
    @given(graph=random_graphs())
    def test_neighbor_lists_match_edges(self, graph):
        neighbor_pairs = {(min(v, int(u)), max(v, int(u)))
                          for v in range(graph.num_vertices)
                          for u in graph.neighbors(v)}
        assert neighbor_pairs == {tuple(edge) for edge in graph.edges.tolist()}

    @settings(max_examples=50)
    @given(graph=random_graphs(), data=st.data())
    def test_subgraph_never_gains_edges(self, graph, data):
        if graph.num_vertices == 0:
            return
        subset = data.draw(st.lists(st.integers(0, graph.num_vertices - 1),
                                    max_size=graph.num_vertices))
        subgraph, _ = graph.subgraph(subset)
        assert subgraph.num_edges <= graph.num_edges


class TestMetricInvariants:
    @settings(max_examples=80)
    @given(pair=graphs_with_assignments())
    def test_cut_plus_objective_is_edge_count(self, pair):
        graph, partition = pair
        assert cut_size(partition) + objective_value(partition) == graph.num_edges

    @settings(max_examples=80)
    @given(pair=graphs_with_assignments())
    def test_locality_in_range(self, pair):
        _, partition = pair
        assert 0.0 <= edge_locality(partition) <= 100.0

    @settings(max_examples=80)
    @given(pair=graphs_with_assignments())
    def test_imbalance_nonnegative(self, pair):
        graph, partition = pair
        values = imbalance(partition, unit_weights(graph))
        assert np.all(values >= -1e-12)

    @settings(max_examples=80)
    @given(pair=graphs_with_assignments())
    def test_epsilon_one_always_balanced_for_two_parts(self, pair):
        graph, partition = pair
        if partition.num_parts != 2:
            return
        assert is_epsilon_balanced(partition, unit_weights(graph), epsilon=1.0)


class TestRoundingProperties:
    @settings(max_examples=60)
    @given(x=hnp.arrays(np.float64, 40, elements=st.floats(-1.0, 1.0)),
           seed=st.integers(0, 2**32 - 1))
    def test_rounding_is_sign_valued(self, x, seed):
        sides = randomized_round(x, np.random.default_rng(seed))
        assert set(np.unique(sides)).issubset({-1.0, 1.0})

    @settings(max_examples=40, deadline=None)
    @given(graph=random_graphs(max_vertices=20, max_edges=40),
           seed=st.integers(0, 1000))
    def test_repair_reaches_balance_on_unit_weights(self, graph, seed):
        if graph.num_vertices < 4:
            return
        rng = np.random.default_rng(seed)
        weights = unit_weights(graph)[None, :]
        sides = np.where(rng.random(graph.num_vertices) < 0.5, 1.0, -1.0)
        repaired = balance_repair(graph, sides, weights, epsilon=0.5)
        partition = Partition.from_sides(graph, repaired)
        # epsilon=0.5 on unit weights is satisfiable whenever n >= 4 (split
        # sizes within [n/4, 3n/4] exist); repair must reach it.
        assert is_epsilon_balanced(partition, weights, epsilon=0.51)
