"""Unit tests for recursive bisection and the direct k-way relaxation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GDConfig, gd_multiway, project_rows_to_simplex, recursive_bisection
from repro.graphs import ring_of_cliques, standard_weights
from repro.partition import edge_locality, max_imbalance


def _config(**overrides) -> GDConfig:
    defaults = dict(iterations=40, seed=0)
    defaults.update(overrides)
    return GDConfig(**defaults)


class TestRecursiveBisection:
    def test_power_of_two_parts(self, social_graph, social_weights):
        partition = recursive_bisection(social_graph, social_weights, 4, 0.05, _config())
        assert partition.num_parts == 4
        assert set(np.unique(partition.assignment)) == {0, 1, 2, 3}

    def test_non_power_of_two_parts(self, social_graph, social_weights):
        partition = recursive_bisection(social_graph, social_weights, 3, 0.05, _config())
        assert partition.num_parts == 3
        sizes = partition.part_sizes()
        assert sizes.min() > 0
        # Every part close to n/3.
        assert sizes.max() / sizes.mean() - 1.0 < 0.15

    def test_balanced_across_dimensions(self, social_graph, social_weights):
        partition = recursive_bisection(social_graph, social_weights, 4, 0.05, _config())
        assert max_imbalance(partition, social_weights) < 0.10

    def test_locality_beats_random(self, lj_graph):
        weights = standard_weights(lj_graph, 2)
        partition = recursive_bisection(lj_graph, weights, 4, 0.05, _config())
        assert edge_locality(partition) > 100.0 / 4 + 10

    def test_single_part(self, social_graph, social_weights):
        partition = recursive_bisection(social_graph, social_weights, 1, 0.05, _config())
        assert partition.num_parts == 1
        assert np.all(partition.assignment == 0)

    def test_clique_ring_recovers_cliques(self):
        graph = ring_of_cliques(8, 8)
        weights = standard_weights(graph, 2)
        partition = recursive_bisection(graph, weights, 4, 0.05, _config(iterations=60))
        # Optimal 4-way split cuts at most 8 ring edges out of 8*28+8.
        assert edge_locality(partition) > 90.0

    def test_invalid_num_parts(self, social_graph, social_weights):
        with pytest.raises(ValueError):
            recursive_bisection(social_graph, social_weights, 0, 0.05, _config())

    def test_too_many_parts(self, triangle_graph):
        weights = standard_weights(triangle_graph, 1)
        with pytest.raises(ValueError):
            recursive_bisection(triangle_graph, weights, 10, 0.05, _config())


class TestSimplexProjection:
    def test_rows_sum_to_one(self, rng):
        matrix = rng.normal(size=(50, 6))
        projected = project_rows_to_simplex(matrix)
        assert np.allclose(projected.sum(axis=1), 1.0)
        assert np.all(projected >= -1e-12)

    def test_already_on_simplex_unchanged(self):
        matrix = np.array([[0.25, 0.75], [0.5, 0.5]])
        assert np.allclose(project_rows_to_simplex(matrix), matrix)

    def test_one_hot_preserved(self):
        matrix = np.array([[0.0, 1.0, 0.0]])
        assert np.allclose(project_rows_to_simplex(matrix), matrix)

    def test_uniform_from_equal_scores(self):
        matrix = np.array([[5.0, 5.0, 5.0, 5.0]])
        assert np.allclose(project_rows_to_simplex(matrix), 0.25)


class TestDirectMultiway:
    def test_partition_shape(self, social_graph, social_weights):
        result = gd_multiway(social_graph, social_weights, 4, 0.05, _config(iterations=30))
        assert result.partition.num_parts == 4
        assert result.fractional.shape == (social_graph.num_vertices, 4)

    def test_fractional_rows_are_distributions(self, social_graph, social_weights):
        result = gd_multiway(social_graph, social_weights, 3, 0.05, _config(iterations=20))
        assert np.allclose(result.fractional.sum(axis=1), 1.0, atol=1e-6)
        assert np.all(result.fractional >= -1e-9)

    def test_reasonable_balance(self, social_graph, social_weights):
        result = gd_multiway(social_graph, social_weights, 4, 0.05, _config(iterations=30))
        assert max_imbalance(result.partition, social_weights) < 0.25

    def test_locality_beats_random(self, lj_graph):
        weights = standard_weights(lj_graph, 2)
        result = gd_multiway(lj_graph, weights, 4, 0.05, _config(iterations=40))
        assert edge_locality(result.partition) > 100.0 / 4

    def test_empty_graph(self):
        from repro.graphs import Graph

        graph = Graph.from_edges(0, [])
        result = gd_multiway(graph, np.empty((1, 0)) + 1.0, 3, 0.05, _config(iterations=5))
        assert result.partition.assignment.size == 0

    def test_invalid_parts(self, social_graph, social_weights):
        with pytest.raises(ValueError):
            gd_multiway(social_graph, social_weights, 0, 0.05, _config())
