"""Unit tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graphs import read_edge_list, read_partition, write_edge_list
from repro.graphs.generators import power_law_cluster_graph


@pytest.fixture
def graph_file(tmp_path):
    graph = power_law_cluster_graph(200, 4, 10.0, seed=0)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_version_is_single_sourced_from_the_package(self):
        """pyproject.toml must not carry its own version literal: it declares
        ``version`` dynamic and reads ``repro.__version__``."""
        import pathlib

        import repro

        tomllib = pytest.importorskip("tomllib")  # stdlib from Python 3.11

        pyproject = pathlib.Path(__file__).resolve().parents[1] / "pyproject.toml"
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
        assert "version" not in data["project"]
        assert "version" in data["project"]["dynamic"]
        assert data["tool"]["setuptools"]["dynamic"]["version"]["attr"] == "repro.__version__"
        assert repro.__version__

    def test_parallelism_accepts_batched(self):
        args = build_parser().parse_args(
            ["partition", "g.txt", "--parallelism", "batched"])
        assert args.parallelism == "batched"

    def test_parallelism_accepts_shm(self):
        args = build_parser().parse_args(
            ["partition", "g.txt", "--parallelism", "shm",
             "--shm-min-wave-tasks", "4"])
        assert args.parallelism == "shm"
        assert args.shm_min_wave_tasks == 4

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition", "g.txt"])
        assert args.parts == 2
        assert args.algorithm == "gd"
        assert args.weights == ["unit", "degree"]

    def test_rejects_unknown_weight(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition", "g.txt", "--weights", "bogus"])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition", "g.txt", "--algorithm", "bogus"])

    def test_projection_flags(self):
        args = build_parser().parse_args(["partition", "g.txt"])
        assert args.projection_method == "alternating_oneshot"
        assert args.projection_cache is True
        args = build_parser().parse_args(
            ["partition", "g.txt", "--projection", "exact", "--no-projection-cache"])
        assert args.projection_method == "exact"
        assert args.projection_cache is False

    def test_rejects_unknown_projection(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition", "g.txt", "--projection", "bogus"])

    def test_multilevel_and_compaction_flags(self):
        args = build_parser().parse_args(["partition", "g.txt"])
        assert args.multilevel is False
        assert args.compaction is False
        assert args.coarsest_size is None
        assert args.refinement_iterations is None
        args = build_parser().parse_args(
            ["partition", "g.txt", "--multilevel", "--coarsest-size", "256",
             "--refinement-iterations", "6", "--compaction"])
        assert args.multilevel is True
        assert args.coarsest_size == 256
        assert args.refinement_iterations == 6
        assert args.compaction is True
        args = build_parser().parse_args(
            ["partition", "g.txt", "--no-multilevel", "--no-compaction"])
        assert args.multilevel is False
        assert args.compaction is False


class TestPartitionCommand:
    def test_gd_partition_writes_assignment(self, graph_file, tmp_path, capsys):
        output = tmp_path / "parts.txt"
        code = main(["partition", str(graph_file), "--parts", "4",
                     "--iterations", "15", "--output", str(output)])
        assert code == 0
        graph = read_edge_list(graph_file)
        assignment = read_partition(output)
        assert assignment.shape == (graph.num_vertices,)
        assert set(np.unique(assignment)).issubset({0, 1, 2, 3})
        captured = capsys.readouterr().out
        assert "edge locality" in captured

    def test_workers_with_poolless_backend_warns(self, graph_file, capsys):
        # --workers has no effect on serial/batched; say so instead of
        # silently ignoring it.
        code = main(["partition", str(graph_file), "--parts", "2",
                     "--iterations", "10", "--workers", "4"])
        assert code == 0
        captured = capsys.readouterr()
        assert "warning: --workers 4 is ignored" in captured.err
        assert "serial" in captured.err

    def test_workers_with_pool_backend_does_not_warn(self, graph_file, capsys):
        code = main(["partition", str(graph_file), "--parts", "2",
                     "--iterations", "10", "--workers", "2",
                     "--parallelism", "thread"])
        assert code == 0
        assert "ignored" not in capsys.readouterr().err

    def test_gd_partition_with_shm_parallelism(self, graph_file, tmp_path, capsys):
        # The same seed through serial and shm produces identical files.
        serial_out = tmp_path / "serial.txt"
        shm_out = tmp_path / "shm.txt"
        assert main(["partition", str(graph_file), "--parts", "4",
                     "--iterations", "10", "--seed", "3",
                     "--output", str(serial_out)]) == 0
        assert main(["partition", str(graph_file), "--parts", "4",
                     "--iterations", "10", "--seed", "3",
                     "--parallelism", "shm", "--workers", "2",
                     "--output", str(shm_out)]) == 0
        capsys.readouterr()
        assert np.array_equal(read_partition(serial_out), read_partition(shm_out))

    def test_gd_partition_with_multilevel_and_compaction(self, graph_file, capsys):
        code = main(["partition", str(graph_file), "--parts", "2",
                     "--iterations", "15", "--multilevel",
                     "--coarsest-size", "64", "--refinement-iterations", "5",
                     "--compaction"])
        assert code == 0
        assert "edge locality" in capsys.readouterr().out

    @pytest.mark.parametrize("algorithm", ["hash", "blp", "fennel", "ldg"])
    def test_baseline_algorithms(self, graph_file, algorithm, capsys):
        code = main(["partition", str(graph_file), "--algorithm", algorithm,
                     "--parts", "2"])
        assert code == 0
        assert "edge locality" in capsys.readouterr().out


class TestEvaluateCommand:
    def test_evaluate_roundtrip(self, graph_file, tmp_path, capsys):
        output = tmp_path / "parts.txt"
        assert main(["partition", str(graph_file), "--iterations", "10",
                     "--output", str(output)]) == 0
        capsys.readouterr()
        assert main(["evaluate", str(graph_file), str(output)]) == 0
        assert "imbalance" in capsys.readouterr().out

    def test_evaluate_length_mismatch(self, graph_file, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("0\n1\n")
        assert main(["evaluate", str(graph_file), str(bad)]) == 2


class TestRepartitionCommand:
    def test_repartition_defaults(self):
        args = build_parser().parse_args(
            ["repartition", "g.txt", "parts.txt", "updates.txt"])
        assert args.weights == ["unit", "degree"]
        assert args.hops is None and args.damage_threshold is None
        assert args.parallelism == "serial"

    def test_repartition_roundtrip(self, graph_file, tmp_path, capsys):
        """Partition, churn, repair: the repaired assignment is written and
        the per-batch repair-vs-recompute report is printed."""
        from repro.dynamic import UpdateBatch, write_update_batches
        from repro.graphs import churn_trace

        parts = tmp_path / "parts.txt"
        assert main(["partition", str(graph_file), "--parts", "4",
                     "--iterations", "15", "--output", str(parts)]) == 0
        graph = read_edge_list(graph_file)
        trace = churn_trace(graph, 2, 0.02, seed=4)
        updates = tmp_path / "updates.txt"
        write_update_batches(
            [UpdateBatch(insertions=ins, deletions=dels) for ins, dels in trace],
            updates)
        capsys.readouterr()

        repaired = tmp_path / "repaired.txt"
        code = main(["repartition", str(graph_file), str(parts), str(updates),
                     "--iterations", "15", "--repair-iterations", "5",
                     "--output", str(repaired)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "batch 0:" in captured and "batch 1:" in captured
        assert "work ratio" in captured
        assignment = read_partition(repaired)
        assert assignment.shape == (graph.num_vertices,)
        assert set(np.unique(assignment)).issubset({0, 1, 2, 3})

    def test_repartition_length_mismatch(self, graph_file, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("0\n1\n")
        updates = tmp_path / "updates.txt"
        updates.write_text("+ 0 1\n")
        assert main(["repartition", str(graph_file), str(bad),
                     str(updates)]) == 2

    def test_repartition_parts_override(self, graph_file, tmp_path, capsys):
        """--parts protects against silently shrinking k when the
        highest-numbered part happens to be empty in the input."""
        graph = read_edge_list(graph_file)
        parts = tmp_path / "parts.txt"
        # Parts 0/1 populated, part 2 empty: inference would say k=2.
        assignment = np.arange(graph.num_vertices) % 2
        parts.write_text("\n".join(str(p) for p in assignment) + "\n")
        updates = tmp_path / "updates.txt"
        updates.write_text("# empty batch\n")
        out = tmp_path / "repaired.txt"
        assert main(["repartition", str(graph_file), str(parts), str(updates),
                     "--parts", "3", "--iterations", "10",
                     "--output", str(out)]) == 0
        assert "parts:          3" in capsys.readouterr().out
        # And an assignment carrying ids beyond --parts is rejected.
        assert main(["repartition", str(graph_file), str(parts), str(updates),
                     "--parts", "1"]) == 2
        # Negative part ids get the same clean error path, not a traceback.
        parts.write_text("\n".join("-1" for _ in range(graph.num_vertices)) + "\n")
        assert main(["repartition", str(graph_file), str(parts),
                     str(updates)]) == 2


class TestGenerateCommand:
    def test_generate_preset(self, tmp_path, capsys):
        output = tmp_path / "lj.txt"
        code = main(["generate", "livejournal", "--scale", "0.1",
                     "--output", str(output)])
        assert code == 0
        graph = read_edge_list(output)
        assert graph.num_vertices > 0
        assert "wrote" in capsys.readouterr().out

    def test_generate_unknown_preset(self, tmp_path):
        with pytest.raises(KeyError):
            main(["generate", "nope", "--output", str(tmp_path / "x.txt")])


class TestRepartitionBadInput:
    """Bad operator input answers with one line on stderr and exit 2 —
    never a raw traceback (the regression this class pins down)."""

    @pytest.fixture
    def parts_file(self, graph_file, tmp_path):
        graph = read_edge_list(graph_file)
        parts = tmp_path / "parts.txt"
        parts.write_text(
            "\n".join(str(i % 2) for i in range(graph.num_vertices)) + "\n")
        return parts

    def test_unknown_trace_op(self, graph_file, parts_file, tmp_path, capsys):
        updates = tmp_path / "updates.txt"
        updates.write_text("x 1 2\n")
        assert main(["repartition", str(graph_file), str(parts_file),
                     str(updates)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "malformed update line" in err

    def test_out_of_range_update(self, graph_file, parts_file, tmp_path,
                                 capsys):
        updates = tmp_path / "updates.txt"
        updates.write_text("+ 0 999999\n")
        assert main(["repartition", str(graph_file), str(parts_file),
                     str(updates)]) == 2
        assert "error: batch 0:" in capsys.readouterr().err

    def test_conflicting_update(self, graph_file, parts_file, tmp_path,
                                capsys):
        graph = read_edge_list(graph_file)
        u, v = (int(x) for x in graph.edges[0])
        updates = tmp_path / "updates.txt"
        updates.write_text(f"- {u} {v}\n%%\n- {u} {v}\n")  # second delete conflicts
        assert main(["repartition", str(graph_file), str(parts_file),
                     str(updates)]) == 2
        assert "batch 1" in capsys.readouterr().err

    def test_junk_assignment_file(self, graph_file, tmp_path, capsys):
        bad = tmp_path / "junk.txt"
        bad.write_text("not-a-number\n")
        updates = tmp_path / "updates.txt"
        updates.write_text("+ 0 1\n")
        assert main(["repartition", str(graph_file), str(bad),
                     str(updates)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_missing_updates_file(self, graph_file, parts_file, tmp_path,
                                  capsys):
        assert main(["repartition", str(graph_file), str(parts_file),
                     str(tmp_path / "nope.txt")]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_evaluate_junk_assignment(self, graph_file, tmp_path, capsys):
        bad = tmp_path / "junk.txt"
        bad.write_text("zero\n")
        assert main(["evaluate", str(graph_file), str(bad)]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestStoreCommand:
    def test_init_put_ls_get_roundtrip(self, graph_file, tmp_path, capsys):
        store = tmp_path / "store.sqlite"
        parts = tmp_path / "parts.txt"
        assert main(["partition", str(graph_file), "--parts", "4",
                     "--iterations", "10", "--output", str(parts)]) == 0
        assert main(["store", "init", str(store)]) == 0
        assert main(["store", "put", str(store), "g", str(graph_file),
                     "--assignment", str(parts)]) == 0
        capsys.readouterr()

        assert main(["store", "ls", str(store)]) == 0
        listing = capsys.readouterr().out
        assert "1 graphs, 1 assignments" in listing
        assert "assignment 'initial': k=4" in listing

        exported = tmp_path / "exported.txt"
        exported_parts = tmp_path / "exported_parts.txt"
        assert main(["store", "get", str(store), "g",
                     "--output", str(exported)]) == 0
        assert main(["store", "get", str(store), "g",
                     "--assignment-name", "initial",
                     "--assignment-output", str(exported_parts)]) == 0
        original = read_edge_list(graph_file)
        roundtrip = read_edge_list(exported)
        assert roundtrip.num_vertices == original.num_vertices
        np.testing.assert_array_equal(roundtrip.edges, original.edges)
        np.testing.assert_array_equal(read_partition(exported_parts),
                                      read_partition(parts))

    def test_put_assignment_onto_existing_graph(self, graph_file, tmp_path,
                                                capsys):
        store = tmp_path / "store.sqlite"
        graph = read_edge_list(graph_file)
        parts = tmp_path / "parts.txt"
        parts.write_text(
            "\n".join(str(i % 3) for i in range(graph.num_vertices)) + "\n")
        assert main(["store", "init", str(store)]) == 0
        assert main(["store", "put", str(store), "g", str(graph_file)]) == 0
        # Second put: no edge list, just attach another assignment.
        assert main(["store", "put", str(store), "g",
                     "--assignment", str(parts),
                     "--assignment-name", "by-hand", "--parts", "3"]) == 0
        capsys.readouterr()
        assert main(["store", "ls", str(store)]) == 0
        assert "by-hand" in capsys.readouterr().out

    def test_store_errors_are_one_liners(self, graph_file, tmp_path, capsys):
        store = tmp_path / "store.sqlite"
        assert main(["store", "ls", str(store)]) == 2  # missing store
        assert "error:" in capsys.readouterr().err
        assert main(["store", "init", str(store)]) == 0
        assert main(["store", "init", str(store)]) == 2  # double init
        assert main(["store", "put", str(store), "g"]) == 2  # nothing to store
        assert main(["store", "put", str(store), "g", str(graph_file)]) == 0
        assert main(["store", "put", str(store), "g", str(graph_file)]) == 2
        assert main(["store", "get", str(store), "missing"]) == 2
        err = capsys.readouterr().err
        assert "already stored" in err and "no graph" in err


class TestServeCommand:
    def test_bench_parser_defaults(self):
        args = build_parser().parse_args(["serve", "bench"])
        assert args.lookups == 50_000
        assert args.batch_size == 256
        assert args.skew == 1.0
        assert args.min_lookups_per_sec is None

    def test_run_parser_defaults(self):
        args = build_parser().parse_args(["serve", "run", "db", "g", "a"])
        assert args.port == 7171
        assert args.weights == ["unit", "degree"]
        assert args.max_queue == 64

    def test_bench_without_server_fails_cleanly(self, capsys):
        # Port 1 is privileged and unbound: the connect fails immediately.
        assert main(["serve", "bench", "--port", "1",
                     "--lookups", "10"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_serve_run_rejects_missing_store(self, tmp_path, capsys):
        assert main(["serve", "run", str(tmp_path / "nope.sqlite"),
                     "g", "initial"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_serve_run_rejects_corrupt_store(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.sqlite"
        corrupt.write_bytes(b"definitely not sqlite\x00" * 64)
        assert main(["serve", "run", str(corrupt), "g", "initial"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not a valid partition store" in err

    def test_serve_run_rejects_bad_fault_plan(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text("{broken", encoding="utf-8")
        assert main(["serve", "run", str(tmp_path / "db.sqlite"), "g", "a",
                     "--fault-plan", str(plan)]) == 2
        assert "cannot load fault plan" in capsys.readouterr().err

    def test_store_get_absent_assignment_fails_cleanly(self, graph_file,
                                                       tmp_path, capsys):
        store = tmp_path / "store.sqlite"
        assert main(["store", "init", str(store)]) == 0
        assert main(["store", "put", str(store), "g", str(graph_file)]) == 0
        capsys.readouterr()
        assert main(["store", "get", str(store), "g",
                     "--assignment-name", "absent"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "absent" in err


class TestResilienceCLI:
    """Checkpoint/resume, fault plans and the chaos command."""

    def test_partition_resilience_parser_defaults(self):
        args = build_parser().parse_args(["partition", "g.txt"])
        assert args.task_timeout is None
        assert args.task_retries is None
        assert args.checkpoint_store is None
        assert args.checkpoint_every == 1
        assert args.resume is False
        assert args.fault_plan is None

    def test_serve_chaos_parser_defaults(self):
        args = build_parser().parse_args(["serve", "chaos"])
        assert args.fault_plan is None
        assert args.vertices == 300
        assert args.parts == 4
        assert args.json is None

    def test_resume_requires_checkpoint_store(self, graph_file, capsys):
        assert main(["partition", str(graph_file), "--resume"]) == 2
        assert "--resume needs --checkpoint-store" in capsys.readouterr().err

    def test_checkpointing_requires_gd(self, graph_file, tmp_path, capsys):
        assert main(["partition", str(graph_file), "--algorithm", "hash",
                     "--checkpoint-store",
                     str(tmp_path / "ckpt.sqlite")]) == 2
        assert "only supported for --algorithm gd" in capsys.readouterr().err

    def test_malformed_fault_plan_fails_cleanly(self, graph_file, tmp_path,
                                                capsys):
        plan = tmp_path / "plan.json"
        plan.write_text("[not, an, object]", encoding="utf-8")
        assert main(["partition", str(graph_file),
                     "--fault-plan", str(plan)]) == 2
        assert "cannot load fault plan" in capsys.readouterr().err

    def test_killed_run_resumes_bit_identically(self, graph_file, tmp_path,
                                                capsys):
        """The operator workflow end to end: a checkpointed run dies at
        wave 2 (injected), `--resume` replays from the stored checkpoint,
        and the assignment matches an uninterrupted run's bits."""
        import json

        reference = tmp_path / "reference.txt"
        base = ["partition", str(graph_file), "--parts", "8",
                "--iterations", "10", "--seed", "5"]
        assert main(base + ["--output", str(reference)]) == 0

        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"faults": [
            {"site": "recursive.wave", "label": "level=2", "at": None,
             "message": "injected kill"}]}), encoding="utf-8")
        store = tmp_path / "ckpt.sqlite"
        capsys.readouterr()
        assert main(base + ["--checkpoint-store", str(store),
                            "--checkpoint-run", "demo",
                            "--fault-plan", str(plan)]) == 2
        assert "injected kill" in capsys.readouterr().err

        resumed = tmp_path / "resumed.txt"
        assert main(base + ["--checkpoint-store", str(store),
                            "--checkpoint-run", "demo", "--resume",
                            "--output", str(resumed)]) == 0
        assert "resuming run 'demo' from checkpoint level 2" \
            in capsys.readouterr().out
        np.testing.assert_array_equal(read_partition(resumed),
                                      read_partition(reference))

    def test_resume_without_stored_checkpoint_fails_cleanly(self, graph_file,
                                                            tmp_path, capsys):
        store = tmp_path / "ckpt.sqlite"
        assert main(["store", "init", str(store)]) == 0
        capsys.readouterr()
        assert main(["partition", str(graph_file),
                     "--checkpoint-store", str(store), "--resume"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_task_flags_flow_into_config(self, graph_file, capsys):
        """--task-timeout / --task-retries parse and the run still
        completes (inline path: no pool to time out)."""
        assert main(["partition", str(graph_file), "--parts", "4",
                     "--iterations", "10", "--task-timeout", "30",
                     "--task-retries", "1"]) == 0
        assert "edge locality" in capsys.readouterr().out

    def test_serve_chaos_reports_recovery(self, tmp_path, capsys):
        """The chaos lane's entry point: seeded storm, exit 0, greppable
        verdict, JSON report with the recovery counters."""
        import json

        report_file = tmp_path / "chaos.json"
        assert main(["serve", "chaos", "--vertices", "200",
                     "--json", str(report_file)]) == 0
        out = capsys.readouterr().out
        assert "verdict           recovered" in out
        report = json.loads(report_file.read_text(encoding="utf-8"))
        assert report["recovered"] is True
        assert report["failed_lookups"] == 0
        assert report["repair_recoveries"] == 2
        assert report["health_sequence"][0] == "ok"
        assert "degraded" in report["health_sequence"]
