"""Unit tests for partition quality metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, standard_weights, unit_weights
from repro.partition import (
    Partition,
    cut_size,
    edge_locality,
    imbalance,
    is_epsilon_balanced,
    max_imbalance,
    objective_value,
    quality_summary,
)


@pytest.fixture
def square_graph() -> Graph:
    """4-cycle: 0-1-2-3-0."""
    return Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])


class TestCutAndLocality:
    def test_cut_size_square(self, square_graph):
        partition = Partition(graph=square_graph, assignment=np.array([0, 0, 1, 1]),
                              num_parts=2)
        assert cut_size(partition) == 2

    def test_cut_size_all_same_part(self, square_graph):
        partition = Partition.trivial(square_graph, num_parts=2)
        assert cut_size(partition) == 0

    def test_cut_size_alternating(self, square_graph):
        partition = Partition(graph=square_graph, assignment=np.array([0, 1, 0, 1]),
                              num_parts=2)
        assert cut_size(partition) == 4

    def test_edge_locality_complement(self, square_graph):
        partition = Partition(graph=square_graph, assignment=np.array([0, 0, 1, 1]),
                              num_parts=2)
        assert edge_locality(partition) == 50.0

    def test_edge_locality_empty_graph(self):
        graph = Graph.from_edges(3, [])
        assert edge_locality(Partition.trivial(graph)) == 100.0

    def test_objective_is_uncut_edges(self, square_graph):
        partition = Partition(graph=square_graph, assignment=np.array([0, 0, 1, 1]),
                              num_parts=2)
        assert objective_value(partition) == 2

    def test_two_cliques_optimal_cut(self, two_cliques_graph):
        partition = Partition(graph=two_cliques_graph,
                              assignment=np.array([0] * 5 + [1] * 5), num_parts=2)
        assert cut_size(partition) == 1
        assert edge_locality(partition) == pytest.approx(100.0 * 20 / 21)


class TestImbalance:
    def test_perfectly_balanced(self, square_graph):
        partition = Partition(graph=square_graph, assignment=np.array([0, 0, 1, 1]),
                              num_parts=2)
        assert np.allclose(imbalance(partition, unit_weights(square_graph)), [0.0])

    def test_unbalanced_vertex_counts(self, square_graph):
        partition = Partition(graph=square_graph, assignment=np.array([0, 0, 0, 1]),
                              num_parts=2)
        # Sizes 3 and 1: max/avg - 1 = 3/2 - 1 = 0.5.
        assert np.allclose(imbalance(partition, unit_weights(square_graph)), [0.5])

    def test_multi_dimensional_shape(self, social_graph, social_weights):
        partition = Partition(graph=social_graph,
                              assignment=np.arange(social_graph.num_vertices) % 4,
                              num_parts=4)
        values = imbalance(partition, social_weights)
        assert values.shape == (2,)
        assert np.all(values >= 0)

    def test_max_imbalance_is_max(self, social_graph, social_weights):
        partition = Partition(graph=social_graph,
                              assignment=np.arange(social_graph.num_vertices) % 3,
                              num_parts=3)
        assert max_imbalance(partition, social_weights) == pytest.approx(
            imbalance(partition, social_weights).max())

    def test_single_part_zero_imbalance(self, square_graph):
        partition = Partition.trivial(square_graph)
        assert max_imbalance(partition, unit_weights(square_graph)) == 0.0


class TestEpsilonBalance:
    def test_balanced_within_epsilon(self, square_graph):
        partition = Partition(graph=square_graph, assignment=np.array([0, 0, 1, 1]),
                              num_parts=2)
        assert is_epsilon_balanced(partition, unit_weights(square_graph), epsilon=0.01)

    def test_unbalanced_outside_epsilon(self, square_graph):
        partition = Partition(graph=square_graph, assignment=np.array([0, 0, 0, 1]),
                              num_parts=2)
        assert not is_epsilon_balanced(partition, unit_weights(square_graph), epsilon=0.1)

    def test_large_epsilon_accepts_anything(self, square_graph):
        partition = Partition(graph=square_graph, assignment=np.array([0, 0, 0, 1]),
                              num_parts=2)
        assert is_epsilon_balanced(partition, unit_weights(square_graph), epsilon=1.0)

    def test_requires_all_dimensions(self, small_star):
        # Hub on one side: vertex counts can be balanced while degrees are not.
        graph = small_star
        assignment = np.zeros(graph.num_vertices, dtype=int)
        assignment[7:] = 1
        partition = Partition(graph=graph, assignment=assignment, num_parts=2)
        weights = standard_weights(graph, 2)
        assert not is_epsilon_balanced(partition, weights, epsilon=0.1)


class TestQualitySummary:
    def test_keys_and_consistency(self, social_graph, social_weights):
        partition = Partition(graph=social_graph,
                              assignment=np.arange(social_graph.num_vertices) % 2,
                              num_parts=2)
        summary = quality_summary(partition, social_weights)
        assert set(summary) == {"edge_locality_pct", "cut_size", "max_imbalance_pct",
                                "num_parts"}
        assert summary["edge_locality_pct"] == pytest.approx(edge_locality(partition))
        assert summary["cut_size"] == cut_size(partition)
