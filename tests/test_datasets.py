"""Unit tests for the dataset presets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    DATASETS,
    fb_like,
    livejournal_like,
    load_dataset,
    orkut_like,
    stackoverflow_like,
    twitter_like,
)


class TestPresets:
    def test_all_presets_load(self):
        for name in DATASETS:
            graph = load_dataset(name, scale=0.1, seed=0)
            assert graph.num_vertices >= 16
            assert graph.num_edges > 0

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("does-not-exist")

    def test_scale_changes_size(self):
        small = load_dataset("livejournal", scale=0.25, seed=0)
        large = load_dataset("livejournal", scale=1.0, seed=0)
        assert large.num_vertices > small.num_vertices

    def test_deterministic_for_seed(self):
        a = load_dataset("twitter", scale=0.2, seed=9)
        b = load_dataset("twitter", scale=0.2, seed=9)
        assert np.array_equal(a.edges, b.edges)

    def test_named_helpers_match_load(self):
        assert (livejournal_like(scale=0.2, seed=1).num_vertices
                == load_dataset("livejournal", scale=0.2, seed=1).num_vertices)
        assert orkut_like(scale=0.2).num_edges == load_dataset("orkut", scale=0.2).num_edges

    def test_orkut_denser_than_livejournal(self):
        lj = livejournal_like(scale=0.5, seed=0)
        orkut = orkut_like(scale=0.5, seed=0)
        assert (orkut.degrees.mean()) > (lj.degrees.mean())

    def test_twitter_more_skewed_than_livejournal(self):
        lj = livejournal_like(scale=1.0, seed=0)
        tw = twitter_like(scale=1.0, seed=0)
        lj_skew = lj.degrees.max() / max(lj.degrees.mean(), 1.0)
        tw_skew = tw.degrees.max() / max(tw.degrees.mean(), 1.0)
        assert tw_skew > lj_skew

    def test_friendster_is_largest_public(self):
        names = ["livejournal", "orkut", "twitter", "friendster"]
        sizes = {name: load_dataset(name, scale=1.0, seed=0).num_vertices for name in names}
        assert sizes["friendster"] == max(sizes.values())

    def test_stackoverflow_loads(self):
        graph = stackoverflow_like(scale=0.2, seed=0)
        assert graph.num_vertices > 0


class TestFacebookPresets:
    def test_fb_sizes_ordered(self):
        fb3 = fb_like(3, scale=0.5, seed=0)
        fb80 = fb_like(80, scale=0.5, seed=0)
        fb400 = fb_like(400, scale=0.5, seed=0)
        assert fb3.num_vertices < fb80.num_vertices < fb400.num_vertices
        assert fb3.num_edges < fb80.num_edges < fb400.num_edges

    def test_fb_via_load_dataset(self):
        graph = load_dataset("fb-80", scale=0.25, seed=0)
        assert graph.num_vertices > 0

    def test_unknown_fb_preset(self):
        with pytest.raises(KeyError):
            fb_like(7)
