"""Tests of the multilevel V-cycle (core/multilevel.py) and the compacted
free-vertex hot loop (core/compaction.py + the stepper/engine hooks).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FreeVertexSystem,
    GDConfig,
    ProjectionEngine,
    gd_bisect,
    multilevel_bisect,
    recursive_bisection,
)
from repro.core.gd import BisectionStepper
from repro.core.multilevel import build_hierarchy, open_boundary, refinement_config
from repro.core.projection import FeasibleRegion
from repro.graphs import Graph, fb_like, standard_weights
from repro.partition import edge_locality, imbalance

ALL_BACKENDS = ("serial", "thread", "process", "batched")


@pytest.fixture(scope="module")
def fb_graph():
    return fb_like(80, scale=0.5, seed=0)


@pytest.fixture(scope="module")
def fb_weights(fb_graph):
    return standard_weights(fb_graph, 2)


# --------------------------------------------------------------------- #
# V-cycle output quality and plumbing
# --------------------------------------------------------------------- #
def test_multilevel_bisect_meets_epsilon_and_partitions_everything(fb_graph, fb_weights):
    config = GDConfig(iterations=60, seed=0, multilevel=True, coarsest_size=128)
    result = gd_bisect(fb_graph, fb_weights, 0.05, config)
    assert result.partition.num_parts == 2
    assert set(np.unique(result.partition.assignment)) == {0, 1}
    assert np.all(imbalance(result.partition, fb_weights) <= 0.05 + 1e-9)
    # The cut should be far better than a random split (~50% locality).
    assert edge_locality(result.partition) > 70.0


def test_multilevel_routes_through_gd_bisect(fb_graph, fb_weights):
    """gd_bisect with multilevel=True returns the V-cycle's result and
    keeps the caller's config on the result object."""
    config = GDConfig(iterations=30, seed=1, multilevel=True, coarsest_size=128)
    via_gd = gd_bisect(fb_graph, fb_weights, 0.05, config)
    direct = multilevel_bisect(fb_graph, fb_weights, 0.05, config)
    assert np.array_equal(via_gd.partition.assignment, direct.partition.assignment)
    assert via_gd.config.multilevel is True


def test_small_graph_runs_flat_even_when_multilevel_enabled(social_graph, social_weights):
    """Bisections at or below coarsest_size are exactly the flat path."""
    flat = GDConfig(iterations=20, seed=5)
    multilevel = flat.with_updates(multilevel=True,
                                   coarsest_size=social_graph.num_vertices + 8)
    a = gd_bisect(social_graph, social_weights, 0.05, flat)
    b = gd_bisect(social_graph, social_weights, 0.05, multilevel)
    assert np.array_equal(a.partition.assignment, b.partition.assignment)


def test_multilevel_defaults_leave_flat_output_unchanged(social_graph, social_weights):
    """The new config fields default off: a default config's output is the
    PR 3 flat path bit for bit (multilevel=False, compaction=False)."""
    config = GDConfig(iterations=25, seed=7)
    assert config.multilevel is False and config.compaction is False
    a = gd_bisect(social_graph, social_weights, 0.05, config)
    b = gd_bisect(social_graph, social_weights, 0.05, config)
    assert np.array_equal(a.partition.assignment, b.partition.assignment)


def test_multilevel_history_records_levels(fb_graph, fb_weights):
    config = GDConfig(iterations=30, seed=0, multilevel=True, coarsest_size=128,
                      record_history=True)
    result = gd_bisect(fb_graph, fb_weights, 0.05, config)
    levels = {record.level for record in result.history}
    assert 0 in levels
    assert max(levels) >= 1  # at least one coarse level was recorded
    # Flat histories stay level 0.
    flat = gd_bisect(fb_graph, fb_weights, 0.05,
                     GDConfig(iterations=10, seed=0, record_history=True))
    assert {record.level for record in flat.history} == {0}


def test_hierarchy_composes_with_epsilon_budget(fb_graph, fb_weights):
    config = GDConfig(iterations=25, seed=3, multilevel=True, coarsest_size=128)
    partition = recursive_bisection(fb_graph, fb_weights, 5, 0.05, config)
    assert partition.num_parts == 5
    assert np.all(imbalance(partition, fb_weights) <= 0.05 + 1e-9)


# --------------------------------------------------------------------- #
# Determinism contract with the new modes
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("num_parts", [5, 8], ids=["odd-k", "power-of-two-k"])
@pytest.mark.parametrize("parallelism", ALL_BACKENDS)
def test_multilevel_bit_identical_across_backends(fb_graph, fb_weights,
                                                  parallelism, num_parts):
    """The satellite matrix: multilevel GD is bit-identical for a fixed
    seed across serial/thread/process/batched, odd and power-of-two k."""
    config = GDConfig(iterations=15, seed=29, multilevel=True, coarsest_size=128)
    reference = recursive_bisection(fb_graph, fb_weights, num_parts, 0.05,
                                    config, parallelism="serial")
    run = recursive_bisection(fb_graph, fb_weights, num_parts, 0.05, config,
                              parallelism=parallelism, max_workers=2)
    assert np.array_equal(run.assignment, reference.assignment)


@pytest.mark.parametrize("parallelism", ALL_BACKENDS)
def test_compaction_bit_identical_across_backends(social_graph, social_weights,
                                                  parallelism):
    config = GDConfig(iterations=15, seed=4, compaction=True)
    reference = recursive_bisection(social_graph, social_weights, 4, 0.05,
                                    config, parallelism="serial")
    run = recursive_bisection(social_graph, social_weights, 4, 0.05, config,
                              parallelism=parallelism, max_workers=2)
    assert np.array_equal(run.assignment, reference.assignment)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       num_parts=st.sampled_from([3, 4, 5]))
def test_multilevel_batched_matches_serial_for_any_seed(seed, num_parts):
    graph = Graph.from_edges(300, [(i, (i + 1) % 300) for i in range(300)]
                             + [(i, (i + 9) % 300) for i in range(300)]
                             + [(i, (i + 41) % 300) for i in range(300)])
    weights = standard_weights(graph, 2)
    config = GDConfig(iterations=8, seed=seed, multilevel=True, coarsest_size=64)
    serial = recursive_bisection(graph, weights, num_parts, 0.05, config)
    batched = recursive_bisection(graph, weights, num_parts, 0.05, config,
                                  parallelism="batched")
    assert np.array_equal(serial.assignment, batched.assignment)


# --------------------------------------------------------------------- #
# Stepper warm-start hooks
# --------------------------------------------------------------------- #
def test_stepper_accepts_initial_iterate_and_mask(social_graph, social_weights):
    n = social_graph.num_vertices
    rng = np.random.default_rng(0)
    initial_x = np.clip(rng.normal(scale=0.5, size=n), -1.0, 1.0)
    initial_fixed = np.zeros(n, dtype=bool)
    initial_fixed[: n // 3] = True
    initial_x[initial_fixed] = np.sign(initial_x[initial_fixed] + 1e-9)
    stepper = BisectionStepper(social_graph, social_weights, 0.05,
                               GDConfig(iterations=10, seed=0),
                               initial_x=initial_x, initial_fixed=initial_fixed)
    np.testing.assert_array_equal(stepper.x, initial_x)
    stepper.step(0)
    # Fixed coordinates never move.
    np.testing.assert_array_equal(stepper.x[initial_fixed],
                                  initial_x[initial_fixed])


def test_stepper_rescales_step_target_to_free_count(social_graph, social_weights):
    """The per-level step-length fix: a warm-started stepper targets
    √free/I, not √n/I."""
    n = social_graph.num_vertices
    fixed = np.zeros(n, dtype=bool)
    fixed[: n // 2] = True
    x = np.zeros(n)
    x[fixed] = 1.0
    config = GDConfig(iterations=10, seed=0)
    cold = BisectionStepper(social_graph, social_weights, 0.05, config)
    warm = BisectionStepper(social_graph, social_weights, 0.05, config,
                            initial_x=x, initial_fixed=fixed)
    ratio = warm.controller.target_length / cold.controller.target_length
    np.testing.assert_allclose(ratio, np.sqrt((n - n // 2) / n), rtol=1e-12)


def test_stepper_rejects_mismatched_initial_state(social_graph, social_weights):
    config = GDConfig(iterations=5, seed=0)
    with pytest.raises(ValueError, match="initial_x"):
        BisectionStepper(social_graph, social_weights, 0.05, config,
                         initial_x=np.zeros(3))
    with pytest.raises(ValueError, match="initial_fixed"):
        BisectionStepper(social_graph, social_weights, 0.05, config,
                         initial_fixed=np.zeros(3, dtype=bool))


def test_engine_warm_lambda_export_import(social_graph, social_weights):
    """Warm multipliers survive an export/import across engines and never
    change the projection's answer (exact method)."""
    region = FeasibleRegion.balanced(social_weights, 0.05)
    rng = np.random.default_rng(1)
    point = rng.normal(size=social_graph.num_vertices)
    donor = ProjectionEngine("exact", region)
    donor.project(point)
    warm = donor.export_warm_lambdas()
    receiver_cold = ProjectionEngine("exact", region)
    receiver_warm = ProjectionEngine("exact", region)
    if warm:
        receiver_warm.seed_warm_lambdas(warm)
    np.testing.assert_array_equal(receiver_warm.project(point),
                                  receiver_cold.project(point))


# --------------------------------------------------------------------- #
# Boundary opening
# --------------------------------------------------------------------- #
def test_open_boundary_releases_conflicted_vertices_only(small_grid):
    adjacency = small_grid.adjacency_matrix()
    n = small_grid.num_vertices
    x = np.ones(n)
    x[: n // 2] = -1.0  # a split along the grid's row order
    fixed = np.ones(n, dtype=bool)
    opened = open_boundary(adjacency, x, fixed, open_fraction=0.25)
    sides = np.where(x >= 0, 1.0, -1.0)
    crossing = 0.5 * (adjacency.sum(axis=1).A1 - sides * (adjacency @ sides))
    released = ~opened
    # Exactly the heavily conflicted vertices are released.
    expected = crossing > 0.25 * adjacency.sum(axis=1).A1
    np.testing.assert_array_equal(released, expected)
    # A uniform partition has no conflicts: nothing is released.
    untouched = open_boundary(adjacency, np.ones(n), fixed)
    assert untouched.all()


# --------------------------------------------------------------------- #
# FreeVertexSystem (compaction)
# --------------------------------------------------------------------- #
def _dense_reference_gradient(adjacency, x, free_ids):
    return (adjacency @ x)[free_ids]


def test_free_vertex_system_matches_masked_gradient(social_graph):
    adjacency = social_graph.adjacency_matrix()
    n = social_graph.num_vertices
    rng = np.random.default_rng(2)
    x = rng.uniform(-1, 1, n)
    fixed = rng.random(n) < 0.4
    x[fixed] = np.sign(x[fixed] + 1e-9)
    system = FreeVertexSystem(adjacency, fixed, x)
    z = x[system.free_ids] + rng.normal(scale=0.01, size=system.num_free)
    full = x.copy()
    full[system.free_ids] = z
    np.testing.assert_allclose(system.gradient(z),
                               _dense_reference_gradient(adjacency, full,
                                                         system.free_ids),
                               rtol=1e-12, atol=1e-12)


def test_free_vertex_system_fix_is_exact_across_epochs(social_graph):
    """Repeated fixing events (spanning at least one re-slice) keep the
    gradient identical to the masked full-size computation."""
    adjacency = social_graph.adjacency_matrix()
    n = social_graph.num_vertices
    rng = np.random.default_rng(3)
    x = rng.uniform(-1, 1, n)
    fixed = np.zeros(n, dtype=bool)
    fixed[:10] = True
    x[fixed] = 1.0
    system = FreeVertexSystem(adjacency, fixed, x)
    for _ in range(6):
        if system.num_free < 8:
            break
        newly = np.zeros(system.num_free, dtype=bool)
        newly[rng.permutation(system.num_free)[: system.num_free // 3]] = True
        snapped = np.where(rng.random(int(newly.sum())) < 0.5, 1.0, -1.0)
        x[system.free_ids[newly]] = snapped
        system.fix(newly, snapped)
        z = x[system.free_ids]
        np.testing.assert_allclose(
            system.gradient(z),
            _dense_reference_gradient(adjacency, x, system.free_ids),
            rtol=1e-12, atol=1e-12)


def test_free_vertex_system_validates_inputs(social_graph):
    adjacency = social_graph.adjacency_matrix()
    n = social_graph.num_vertices
    with pytest.raises(ValueError, match="fixed mask"):
        FreeVertexSystem(adjacency, np.zeros(3, dtype=bool), np.zeros(3))
    fixed = np.zeros(n, dtype=bool)
    fixed[0] = True
    system = FreeVertexSystem(adjacency, fixed, np.zeros(n))
    with pytest.raises(ValueError, match="newly_fixed"):
        system.fix(np.zeros(3, dtype=bool), np.zeros(0))


# --------------------------------------------------------------------- #
# Compacted stepping
# --------------------------------------------------------------------- #
def test_compaction_inert_without_vertex_fixing(social_graph, social_weights):
    """With vertex fixing disabled nothing is ever compacted, so the
    outputs are bit-identical to the masked path."""
    base = GDConfig(iterations=15, seed=6, vertex_fixing=False)
    a = gd_bisect(social_graph, social_weights, 0.05, base)
    b = gd_bisect(social_graph, social_weights, 0.05,
                  base.with_updates(compaction=True))
    assert np.array_equal(a.partition.assignment, b.partition.assignment)


def test_compacted_run_quality_matches_masked(fb_graph, fb_weights):
    """Compaction changes float summation order, not the algorithm: the
    compacted run must deliver the same quality and feasibility."""
    masked = gd_bisect(fb_graph, fb_weights, 0.05, GDConfig(iterations=60, seed=0))
    compacted = gd_bisect(fb_graph, fb_weights, 0.05,
                          GDConfig(iterations=60, seed=0, compaction=True))
    assert np.all(imbalance(compacted.partition, fb_weights) <= 0.05 + 1e-9)
    assert (edge_locality(compacted.partition)
            >= edge_locality(masked.partition) - 1.0)


def test_compacted_projection_matches_full_restriction(social_graph, social_weights):
    """The engine's incrementally narrowed region projects to the same
    point as a from-scratch restriction of the full region."""
    region = FeasibleRegion.balanced(social_weights, 0.05)
    n = social_graph.num_vertices
    rng = np.random.default_rng(8)
    fixed = rng.random(n) < 0.3
    values = np.where(rng.random(int(fixed.sum())) < 0.5, 1.0, -1.0)
    full_values = np.zeros(n)
    full_values[fixed] = values

    engine = ProjectionEngine("alternating_oneshot", region)
    engine.begin_compacted(~fixed, full_values[fixed])
    # Narrow twice, then compare against a one-shot restriction.
    free_ids = np.flatnonzero(~fixed)
    newly = np.zeros(free_ids.size, dtype=bool)
    newly[rng.permutation(free_ids.size)[: free_ids.size // 4]] = True
    snapped = np.where(rng.random(int(newly.sum())) < 0.5, 1.0, -1.0)
    engine.narrow_restricted(~newly, snapped)

    fixed_after = fixed.copy()
    fixed_after[free_ids[newly]] = True
    full_values[free_ids[newly]] = snapped
    reference = ProjectionEngine("alternating_oneshot", region)
    point = rng.normal(size=int((~fixed_after).sum()))
    expected = reference.project_restricted(point, ~fixed_after,
                                            full_values[fixed_after])
    np.testing.assert_allclose(engine.project_compacted(point), expected,
                               rtol=1e-9, atol=1e-12)


def test_compacted_projection_requires_begin(social_weights):
    engine = ProjectionEngine("alternating_oneshot",
                              FeasibleRegion.balanced(social_weights, 0.05))
    with pytest.raises(RuntimeError):
        engine.project_compacted(np.zeros(3))
    with pytest.raises(RuntimeError):
        engine.narrow_restricted(np.ones(3, dtype=bool), np.zeros(0))


# --------------------------------------------------------------------- #
# Config validation
# --------------------------------------------------------------------- #
def test_config_validates_multilevel_fields():
    with pytest.raises(ValueError, match="coarsest_size"):
        GDConfig(coarsest_size=4)
    with pytest.raises(ValueError, match="refinement_iterations"):
        GDConfig(refinement_iterations=0)


def test_build_hierarchy_is_config_seed_deterministic(fb_graph, fb_weights):
    config = GDConfig(seed=13, multilevel=True, coarsest_size=128)
    a = build_hierarchy(fb_graph, fb_weights, config)
    b = build_hierarchy(fb_graph, fb_weights, config)
    assert a.sizes == b.sizes
    for la, lb in zip(a.levels[1:], b.levels[1:]):
        np.testing.assert_array_equal(la.fine_to_coarse, lb.fine_to_coarse)


def test_refinement_config_shape():
    config = GDConfig(iterations=100, seed=3, refinement_iterations=7,
                      multilevel=True)
    refine = refinement_config(config)
    assert refine.iterations == 7
    assert refine.multilevel is False
    assert refine.compaction is True
    assert refine.noise_std == 0.0
    assert refine.fixing_start_fraction == 0.0
    assert refine.seed == config.seed
