"""Unit tests for the convenience graph builders."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.graphs import from_adjacency_dict, from_edge_arrays, from_scipy_sparse


class TestFromAdjacencyDict:
    def test_basic(self):
        graph = from_adjacency_dict({0: [1, 2], 1: [2]})
        assert graph.num_vertices == 3
        assert graph.num_edges == 3

    def test_neighbor_only_vertices_included(self):
        graph = from_adjacency_dict({0: [5]})
        assert graph.num_vertices == 6

    def test_explicit_vertex_count(self):
        graph = from_adjacency_dict({0: [1]}, num_vertices=10)
        assert graph.num_vertices == 10

    def test_empty_dict(self):
        graph = from_adjacency_dict({})
        assert graph.num_vertices == 0


class TestFromScipySparse:
    def test_symmetric_matrix(self):
        matrix = sparse.csr_matrix(np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]]))
        graph = from_scipy_sparse(matrix)
        assert graph.num_edges == 2

    def test_asymmetric_matrix_is_symmetrized(self):
        matrix = sparse.csr_matrix(np.array([[0, 1], [0, 0]]))
        graph = from_scipy_sparse(matrix)
        assert graph.num_edges == 1

    def test_diagonal_ignored(self):
        matrix = sparse.eye(3, format="csr")
        graph = from_scipy_sparse(matrix)
        assert graph.num_edges == 0

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            from_scipy_sparse(sparse.csr_matrix(np.ones((2, 3))))


class TestFromEdgeArrays:
    def test_basic(self):
        graph = from_edge_arrays([0, 1, 2], [1, 2, 3])
        assert graph.num_vertices == 4
        assert graph.num_edges == 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            from_edge_arrays([0, 1], [1])

    def test_empty_arrays(self):
        graph = from_edge_arrays([], [], num_vertices=3)
        assert graph.num_vertices == 3
        assert graph.num_edges == 0
