"""Tests for the experiment harness (structure and qualitative shape).

Every experiment runner is executed at a tiny scale so the whole module
stays fast; the assertions check (a) the row/series structure the
benchmarks rely on and (b) the coarse qualitative orderings the paper
reports (e.g. GD locality above Hash locality).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    appendix_stackoverflow,
    fig1_worker_histogram,
    fig4_imbalance,
    fig5_locality_public,
    fig6_locality_fb,
    fig7_speedup,
    fig8_step_length,
    fig9_adaptive,
    fig10_projection_methods,
    fig11_scalability,
    format_series,
    format_table,
    table2_pagerank_detail,
    table3_gd_vs_metis,
)
from repro.experiments.common import (
    PARTITIONING_MODES,
    make_baseline,
    measure_resources,
    partition_by_mode,
    public_graph,
)
from repro.experiments.fig11_scalability import linear_fit_r_squared

TINY = 0.15  # generator scale used throughout this module


class TestCommonHelpers:
    def test_public_graph_loads(self):
        graph = public_graph("livejournal", scale=TINY)
        assert graph.num_vertices > 0

    def test_make_baseline_known_names(self):
        for name in ("Hash", "Spinner", "BLP", "SHP", "METIS"):
            assert make_baseline(name).name == name

    def test_make_baseline_unknown(self):
        with pytest.raises(KeyError):
            make_baseline("GD2")

    def test_partition_by_mode_all_modes(self):
        graph = public_graph("livejournal", scale=TINY)
        for mode in PARTITIONING_MODES:
            partition = partition_by_mode(graph, mode, 4, iterations=15)
            assert partition.num_parts == 4

    def test_partition_by_mode_unknown(self):
        graph = public_graph("livejournal", scale=TINY)
        with pytest.raises(ValueError):
            partition_by_mode(graph, "magic", 2)

    def test_measure_resources(self):
        value, usage = measure_resources(lambda: sum(range(1000)))
        assert value == sum(range(1000))
        assert usage.seconds >= 0
        assert usage.peak_memory_mb >= 0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], [10, 3.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "bbb" in lines[1]
        assert len(lines) == 5

    def test_format_series_samples_last_point(self):
        text = format_series({"s": list(range(25))}, stride=10)
        assert "24" in text


class TestFigureRunners:
    def test_fig1_rows(self):
        rows = fig1_worker_histogram.run(num_workers=4, scale=TINY, gd_iterations=10,
                                         pagerank_supersteps=2)
        assert {row["strategy"] for row in rows} == {"hash", "vertex", "edge", "vertex-edge"}
        assert all("speedup_over_hash_pct" in row for row in rows)
        assert fig1_worker_histogram.format_result(rows)

    def test_fig4_rows_and_shape(self):
        rows = fig4_imbalance.run(scale=TINY, gd_iterations=10, graphs=("twitter",),
                                  algorithms=("Spinner", "GD"))
        by_algorithm = {row["algorithm"]: row for row in rows if row["k"] == 2}
        # GD must be (much) better balanced than Spinner on a skewed graph.
        assert (by_algorithm["GD"]["vertex_imbalance"]
                <= by_algorithm["Spinner"]["vertex_imbalance"] + 0.05)
        assert fig4_imbalance.format_result(rows)

    def test_fig5_gd_beats_hash(self):
        rows = fig5_locality_public.run(scale=TINY, gd_iterations=15,
                                        graphs=("livejournal",), part_counts=(2,))
        locality = {row["algorithm"]: row["edge_locality_pct"] for row in rows}
        assert locality["GD"] > locality["Hash"]
        assert fig5_locality_public.format_result(rows)

    def test_fig6_rows(self):
        rows = fig6_locality_fb.run(scale=TINY, gd_iterations=10, fb_sizes=(3,),
                                    part_counts=(4,))
        assert {row["algorithm"] for row in rows} == {"Hash", "BLP", "GD"}
        assert fig6_locality_fb.format_result(rows)

    def test_fig7_rows(self):
        rows = fig7_speedup.run(scale=TINY, gd_iterations=10, applications=("PR",),
                                configurations=(("small", 3, 4),))
        assert len(rows) == len(PARTITIONING_MODES)
        assert all(row["application"] == "PR" for row in rows)
        assert fig7_speedup.format_result(rows)

    def test_table2_rows(self):
        rows = table2_pagerank_detail.run(scale=TINY, num_workers=4, gd_iterations=10,
                                          pagerank_supersteps=2)
        assert {row["partitioning"] for row in rows} == {"hash", "vertex", "edge",
                                                         "vertex-edge"}
        for row in rows:
            assert row["runtime_max"] >= row["runtime_mean"]
        assert table2_pagerank_detail.format_result(rows)

    def test_fig8_series(self):
        results = fig8_step_length.run(scale=TINY, iterations=10,
                                       graphs=("livejournal",), step_factors=(2.0, 1.0))
        series = results["livejournal"]
        assert set(series) == {"step 2", "step 1"}
        assert all(len(values) == 11 for values in series.values())
        assert fig8_step_length.format_result(results)

    def test_fig9_series(self):
        results = fig9_adaptive.run(scale=TINY, iterations=10, graphs=("livejournal",))
        metrics = results["livejournal"]
        assert set(metrics) == {"locality", "imbalance"}
        assert set(metrics["locality"]) == {"nonadaptive", "adaptive", "adaptive+fixing"}
        assert fig9_adaptive.format_result(results)

    def test_fig10_series(self):
        results = fig10_projection_methods.run(scale=TINY, iterations=8,
                                               graphs=("livejournal",))
        series = results["livejournal"]
        assert "alternating" in series
        assert any(name.startswith("exact") for name in series)
        assert fig10_projection_methods.format_result(results)

    def test_fig11_linearity(self):
        result = fig11_scalability.run(scales=(0.1, 0.2, 0.4), iterations=10)
        assert len(result["rows"]) == 3
        assert result["r_squared"] > 0.5
        assert fig11_scalability.format_result(result)

    def test_linear_fit_perfect_line(self):
        edges = np.array([1.0, 2.0, 3.0, 4.0])
        assert linear_fit_r_squared(edges, 2.0 * edges) == pytest.approx(1.0)

    def test_table3_rows(self):
        rows = table3_gd_vs_metis.run(scale=TINY, gd_iterations=10,
                                      graphs=("livejournal",), dimensions=(2,))
        assert {row["algorithm"] for row in rows} == {"GD", "METIS"}
        for row in rows:
            assert row["memory_mb"] > 0
            assert row["seconds"] > 0
        assert table3_gd_vs_metis.format_result(rows)

    def test_appendix_runners(self):
        fig16 = appendix_stackoverflow.run_fig16(scale=TINY, iterations=6)
        assert "stackoverflow" in fig16
        assert appendix_stackoverflow.format_result("fig16", fig16)
        with pytest.raises(KeyError):
            appendix_stackoverflow.format_result("fig99", fig16)
