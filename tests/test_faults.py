"""Tests of the deterministic fault-injection framework.

The contract under test: a :class:`FaultPlan` is plain, serializable
data; arming it makes exactly the specified site invocations fail (and
nothing else); a disarmed site is a no-op; and the registry's audit log
records precisely what fired.  The resilience layers are tested against
injected faults in ``test_chaos.py`` / ``test_executor.py`` /
``test_serve.py`` — this module pins down the injection mechanics those
tests stand on.
"""

from __future__ import annotations

import threading

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    arm,
    attempt_scope,
    current_registry,
    disarm,
    fault_site,
    inject,
)


# --------------------------------------------------------------------- #
# FaultSpec validation and matching
# --------------------------------------------------------------------- #
def test_spec_rejects_bad_fields():
    with pytest.raises(ValueError, match="site"):
        FaultSpec(site="")
    with pytest.raises(ValueError, match="kind"):
        FaultSpec(site="s", kind="meteor")
    with pytest.raises(ValueError, match="at"):
        FaultSpec(site="s", at=-1)
    with pytest.raises(ValueError, match="times"):
        FaultSpec(site="s", times=0)
    with pytest.raises(ValueError, match="duration"):
        FaultSpec(site="s", kind="slow", duration=-0.1)


def test_spec_invocation_window():
    spec = FaultSpec(site="s", at=2, times=3)
    fires = [spec.matches(n, None, 0) for n in range(7)]
    assert fires == [False, False, True, True, True, False, False]


def test_spec_any_invocation_when_at_is_none():
    spec = FaultSpec(site="s", at=None)
    assert all(spec.matches(n, None, 0) for n in (0, 5, 1000))


def test_spec_label_and_attempt_filters():
    spec = FaultSpec(site="s", at=None, label="depth=1/part=0")
    assert spec.matches(0, "depth=1/part=0", 0)
    assert not spec.matches(0, "depth=1/part=1", 0)
    assert not spec.matches(0, None, 0)
    # attempt defaults to 0: a retry (attempt 1) does not re-trip.
    assert not spec.matches(0, "depth=1/part=0", 1)
    permanent = FaultSpec(site="s", at=None, attempt=None)
    assert permanent.matches(0, None, 0) and permanent.matches(0, None, 3)


def test_spec_default_durations():
    assert FaultSpec(site="s", kind="hang").sleep_seconds == 30.0
    assert FaultSpec(site="s", kind="slow").sleep_seconds == 0.05
    assert FaultSpec(site="s", kind="slow", duration=0.2).sleep_seconds == 0.2
    assert FaultSpec(site="s", kind="exception").sleep_seconds == 0.0


# --------------------------------------------------------------------- #
# FaultPlan: matching order, sites, serialization
# --------------------------------------------------------------------- #
def test_plan_first_matching_spec_wins():
    first = FaultSpec(site="s", at=None, message="first")
    second = FaultSpec(site="s", at=None, message="second")
    plan = FaultPlan(faults=(first, second))
    assert plan.match("s", 0, None, 0) is first
    assert plan.match("other", 0, None, 0) is None


def test_plan_sites_in_first_appearance_order():
    plan = FaultPlan(faults=(FaultSpec(site="b"), FaultSpec(site="a"),
                             FaultSpec(site="b", at=1)))
    assert plan.sites == ("b", "a")


def test_plan_accepts_list_of_faults():
    plan = FaultPlan(faults=[FaultSpec(site="s")])
    assert isinstance(plan.faults, tuple)


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_plan_json_round_trip(kind):
    plan = FaultPlan(seed=7, faults=(
        FaultSpec(site="serve.repair", kind=kind, at=1, times=2,
                  label="level=2", attempt=None, duration=0.01,
                  message="boom"),
        FaultSpec(site="executor.task"),
    ))
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_plan_from_file_round_trip(tmp_path):
    plan = FaultPlan(seed=3, faults=(FaultSpec(site="s", at=None),))
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json(), encoding="utf-8")
    assert FaultPlan.from_file(path) == plan


@pytest.mark.parametrize("text", ["not json", "[1, 2]",
                                  '{"faults": [{"site": "s", "zap": 1}]}',
                                  '{"bogus": true}'])
def test_plan_rejects_malformed_files(tmp_path, text):
    path = tmp_path / "plan.json"
    path.write_text(text, encoding="utf-8")
    with pytest.raises(ValueError, match="fault plan|unknown"):
        FaultPlan.from_file(path)


def test_plan_from_missing_file_is_a_value_error(tmp_path):
    with pytest.raises(ValueError, match="cannot load fault plan"):
        FaultPlan.from_file(tmp_path / "absent.json")


# --------------------------------------------------------------------- #
# Registry: arming, counting, firing, audit log
# --------------------------------------------------------------------- #
def test_disarmed_site_is_a_no_op():
    assert current_registry() is None
    fault_site("anything", label="x")  # must not raise or count anything


def test_inject_scopes_the_registry():
    plan = FaultPlan(faults=(FaultSpec(site="s", at=1, message="second call"),))
    with inject(plan) as registry:
        assert current_registry() is registry
        fault_site("s")  # invocation 0: clean
        with pytest.raises(InjectedFault, match="second call"):
            fault_site("s")  # invocation 1: fires
        fault_site("s")  # invocation 2: window passed
        assert registry.invocations("s") == 3
        assert [f.invocation for f in registry.fired] == [1]
        assert registry.fired[0].kind == "exception"
    assert current_registry() is None
    fault_site("s")  # disarmed again


def test_double_arm_is_an_error():
    arm(FaultPlan())
    try:
        with pytest.raises(RuntimeError, match="already armed"):
            arm(FaultPlan())
    finally:
        disarm()
    disarm()  # idempotent


def test_label_keyed_fault_ignores_other_labels():
    plan = FaultPlan(faults=(FaultSpec(site="s", at=None, label="target"),))
    with inject(plan) as registry:
        fault_site("s", label="other")
        fault_site("s")
        with pytest.raises(InjectedFault):
            fault_site("s", label="target")
    assert [f.label for f in registry.fired] == ["target"]


def test_attempt_scope_gates_default_faults():
    plan = FaultPlan(faults=(FaultSpec(site="s", at=None),))
    with inject(plan):
        with attempt_scope(1):
            fault_site("s")  # retry execution: default attempt=0 skips
        with pytest.raises(InjectedFault):
            fault_site("s")  # first execution fires
    # The scope restores the previous attempt on exit (nesting-safe).
    with attempt_scope(2):
        with attempt_scope(3):
            pass
        plan2 = FaultPlan(faults=(FaultSpec(site="t", at=None, attempt=2),))
        with inject(plan2):
            with pytest.raises(InjectedFault):
                fault_site("t")


def test_slow_fault_sleeps_then_continues():
    plan = FaultPlan(faults=(FaultSpec(site="s", kind="slow", duration=0.01),))
    with inject(plan) as registry:
        fault_site("s")  # must return normally
    assert registry.fired[0].kind == "slow"


def test_counting_is_thread_safe():
    plan = FaultPlan()  # no faults: pure counting
    with inject(plan) as registry:
        threads = [threading.Thread(target=lambda: [fault_site("s")
                                                    for _ in range(200)])
                   for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.invocations("s") == 8 * 200
