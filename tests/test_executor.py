"""Tests of the parallel recursive-bisection executor subsystem.

The load-bearing property is the deterministic-seeding contract of
``repro.core.recursive``: for a fixed ``GDConfig.seed`` the serial,
thread, process, shm and batched backends must produce *bit-identical*
assignments, because every subproblem's RNG seed is a pure function of
its recursion-tree coordinate, never of scheduling order — the batched
backend's stacked arithmetic is the exact image of the per-task
arithmetic, and the shm backend's shared-segment views replay the exact
serial memory layout (see ``tests/test_shm.py`` for the arena-level
tests).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    KERNEL_BACKENDS,
    BisectionExecutor,
    GDConfig,
    GDPartitioner,
    recursive_bisection,
    task_seed,
)
from repro.core.executor import ExecutorTaskError
from repro.faults import FaultPlan, FaultSpec, inject
from repro.graphs import Graph, fb_like, standard_weights
from repro.partition import imbalance

#: The full backend matrix of the determinism contract.
ALL_BACKENDS = ("serial", "thread", "process", "batched", "shm")


# --------------------------------------------------------------------- #
# BisectionExecutor
# --------------------------------------------------------------------- #
def test_executor_rejects_unknown_backend():
    with pytest.raises(ValueError, match="parallelism"):
        BisectionExecutor("fork-bomb")


def test_executor_rejects_bad_worker_count():
    with pytest.raises(ValueError, match="max_workers"):
        BisectionExecutor("thread", max_workers=0)


@pytest.mark.parametrize("parallelism", list(ALL_BACKENDS))
def test_executor_map_preserves_task_order(parallelism):
    with BisectionExecutor(parallelism, max_workers=2) as executor:
        results = executor.map(_square, list(range(20)))
    assert results == [i * i for i in range(20)]


def _square(value: int) -> int:
    return value * value


def test_executor_single_task_bypasses_pool():
    executor = BisectionExecutor("process", max_workers=2)
    assert executor.map(_square, [3]) == [9]
    # No pool should have been spun up for a single task.
    assert executor._pool is None
    executor.shutdown()


# --------------------------------------------------------------------- #
# Failure paths: retries, timeouts, pool rebuilds, terminal errors
# --------------------------------------------------------------------- #
def _fault_at(label: str, **kwargs) -> FaultPlan:
    """A plan that hits ``executor.task`` for one task label (first
    execution only, unless overridden)."""
    return FaultPlan(faults=(FaultSpec(site="executor.task", at=None,
                                       label=label, **kwargs),))


def test_executor_rejects_bad_resilience_knobs():
    with pytest.raises(ValueError, match="task_timeout_seconds"):
        BisectionExecutor("thread", task_timeout_seconds=0.0)
    with pytest.raises(ValueError, match="task_retries"):
        BisectionExecutor("thread", task_retries=-1)


@pytest.mark.parametrize("parallelism", ["serial", "thread", "process"])
def test_injected_failure_is_retried_to_the_same_results(parallelism):
    """One task raises on its first execution; the retry recovers and the
    results are indistinguishable from a clean run (thread/process parity
    with serial included)."""
    expected = [i * i for i in range(6)]
    with inject(_fault_at("#3")) as registry:
        with BisectionExecutor(parallelism, max_workers=2,
                               task_retries=2) as executor:
            results = executor.map(_square, list(range(6)))
        assert results == expected
        assert executor.stats.retries >= 1
        if parallelism != "process":
            # Pool *processes* fire in their own forked registry; the
            # parent's audit log only sees in-process executions.
            assert any(f.label == "#3" and f.attempt == 0
                       for f in registry.fired)


def test_terminal_failure_names_task_and_attempts():
    """A permanent fault exhausts the retry budget; the error message
    carries the task coordinate and the attempt count."""
    plan = _fault_at("depth=1/part=0", attempt=None, message="boom")
    with inject(plan):
        executor = BisectionExecutor("serial", task_retries=2)
        with pytest.raises(ExecutorTaskError,
                           match=r"task depth=1/part=0 failed after "
                                 r"3 attempt\(s\): boom"):
            executor.map(_square, [1, 2], labels=["depth=0/part=0",
                                                  "depth=1/part=0"])
        assert executor.stats.retries == 2


def test_thread_timeout_abandons_hung_thread_and_retries():
    """A hung thread task trips the per-task timeout; the executor races
    a fresh execution (attempt 1, which the default fault keying leaves
    alone) and still returns every result in order."""
    plan = _fault_at("#1", kind="hang", duration=5.0)
    with inject(plan):
        with BisectionExecutor("thread", max_workers=2,
                               task_timeout_seconds=0.2,
                               task_retries=2) as executor:
            results = executor.map(_square, list(range(4)))
        assert results == [i * i for i in range(4)]
        assert executor.stats.timeouts >= 1
        assert executor.stats.retries >= 1


def test_process_crash_rebuilds_pool_and_recovers():
    """A worker dying mid-task (hard ``os._exit``) breaks the pool; the
    executor rebuilds it, resubmits the unfinished tasks, and the results
    match a clean serial run bit for bit."""
    with inject(_fault_at("#2", kind="crash")):
        with BisectionExecutor("process", max_workers=2,
                               task_retries=3) as executor:
            results = executor.map(_square, list(range(5)))
        assert results == [i * i for i in range(5)]
        assert executor.stats.pool_rebuilds >= 1
        assert executor.stats.retries >= 1


def test_process_hang_times_out_and_rebuilds():
    """A hung process worker cannot be joined; the timeout kills the pool
    and the retry completes the wave."""
    plan = _fault_at("#0", kind="hang", duration=30.0)
    with inject(plan):
        with BisectionExecutor("process", max_workers=2,
                               task_timeout_seconds=0.5,
                               task_retries=3) as executor:
            results = executor.map(_square, list(range(3)))
        assert results == [0, 1, 4]
        assert executor.stats.timeouts >= 1
        assert executor.stats.pool_rebuilds >= 1


def test_inline_backends_do_not_enforce_timeouts():
    """Serial runs cannot be interrupted: a slow task just finishes."""
    plan = _fault_at("#0", kind="slow", duration=0.05)
    with inject(plan):
        executor = BisectionExecutor("serial", task_timeout_seconds=0.001)
        assert executor.map(_square, [7]) == [49]
        assert executor.stats.timeouts == 0


# --------------------------------------------------------------------- #
# Deterministic per-task seeding
# --------------------------------------------------------------------- #
def test_task_seed_is_deterministic_and_distinct():
    assert task_seed(0, 1, 2) == task_seed(0, 1, 2)
    coordinates = [(depth, part) for depth in range(4) for part in range(8)]
    seeds = {task_seed(42, depth, part) for depth, part in coordinates}
    assert len(seeds) == len(coordinates)
    assert task_seed(0, 1, 2) != task_seed(1, 1, 2)


# --------------------------------------------------------------------- #
# Graph.subgraph remapping invariants
# --------------------------------------------------------------------- #
def test_subgraph_preserves_edges_and_weights_under_remapping(social_graph):
    rng = np.random.default_rng(5)
    weights = standard_weights(social_graph, 2)
    chosen = np.sort(rng.permutation(social_graph.num_vertices)[:170])

    subgraph, mapping = social_graph.subgraph(chosen)
    assert np.array_equal(mapping, chosen)
    assert subgraph.num_vertices == chosen.size

    # Every induced edge survives with both endpoints remapped consistently,
    # and no edge crosses out of the chosen set.
    original_edges = {(int(u), int(v)) for u, v in social_graph.edges
                      if u in set(chosen.tolist()) and v in set(chosen.tolist())}
    remapped = {(int(mapping[u]), int(mapping[v])) for u, v in subgraph.edges}
    assert remapped == original_edges

    # CSR stays canonical: unique edges with u < v, symmetric adjacency.
    assert np.all(subgraph.edges[:, 0] < subgraph.edges[:, 1])
    adjacency = subgraph.adjacency_matrix()
    assert (adjacency != adjacency.T).nnz == 0

    # Weight columns follow the vertex relabelling.
    sub_weights = weights[:, mapping]
    for new_id, original_id in enumerate(mapping):
        assert np.array_equal(sub_weights[:, new_id], weights[:, original_id])


def test_subgraph_degrees_match_brute_force(small_grid):
    chosen = np.arange(0, small_grid.num_vertices, 2)
    subgraph, mapping = small_grid.subgraph(chosen)
    chosen_set = set(chosen.tolist())
    for new_id, original_id in enumerate(mapping):
        expected = [v for v in small_grid.neighbors(original_id) if int(v) in chosen_set]
        assert subgraph.degree(new_id) == len(expected)


def test_subgraph_of_empty_selection():
    graph = Graph.from_edges(5, [(0, 1), (1, 2)])
    subgraph, mapping = graph.subgraph([])
    assert subgraph.num_vertices == 0
    assert subgraph.num_edges == 0
    assert mapping.size == 0


# --------------------------------------------------------------------- #
# Backend equivalence on the full k-way pipeline
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("num_parts", [4, 5])
def test_backends_produce_identical_partitions(social_graph, social_weights, num_parts):
    config = GDConfig(iterations=15, seed=11)
    reference = recursive_bisection(social_graph, social_weights, num_parts, 0.05, config)
    for parallelism in ("thread", "process", "batched", "shm"):
        partition = recursive_bisection(social_graph, social_weights, num_parts, 0.05,
                                        config, parallelism=parallelism, max_workers=2)
        assert np.array_equal(partition.assignment, reference.assignment), parallelism


@pytest.mark.parametrize("num_parts", [5, 8], ids=["odd-k", "power-of-two-k"])
@pytest.mark.parametrize("parallelism", ALL_BACKENDS)
def test_determinism_contract_all_backends(social_graph, social_weights,
                                           parallelism, num_parts):
    """The acceptance matrix: every backend × odd and power-of-two k.

    All four backends must return bit-identical assignments for a fixed
    seed; re-running the same backend must also be bit-stable.
    """
    config = GDConfig(iterations=12, seed=29)
    reference = recursive_bisection(social_graph, social_weights, num_parts, 0.05,
                                    config, parallelism="serial")
    first = recursive_bisection(social_graph, social_weights, num_parts, 0.05,
                                config, parallelism=parallelism, max_workers=2)
    second = recursive_bisection(social_graph, social_weights, num_parts, 0.05,
                                 config, parallelism=parallelism, max_workers=2)
    assert np.array_equal(first.assignment, reference.assignment)
    assert np.array_equal(second.assignment, reference.assignment)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       num_parts=st.sampled_from([3, 4, 5, 7, 8]))
def test_batched_matches_serial_for_any_seed(seed, num_parts):
    """Property form of the contract: the batched backend agrees with
    serial for arbitrary seeds and part counts (odd and power-of-two)."""
    graph = Graph.from_edges(60, [(i, (i + 1) % 60) for i in range(60)]
                             + [(i, (i + 7) % 60) for i in range(60)])
    weights = standard_weights(graph, 2)
    config = GDConfig(iterations=8, seed=seed)
    serial = recursive_bisection(graph, weights, num_parts, 0.05, config)
    batched = recursive_bisection(graph, weights, num_parts, 0.05, config,
                                  parallelism="batched")
    assert np.array_equal(serial.assignment, batched.assignment)


@pytest.mark.parametrize("kernel_backend", KERNEL_BACKENDS)
def test_kernel_backends_bit_identical_across_executors(social_graph, social_weights,
                                                        kernel_backend):
    """Within a kernel backend, every executor returns the same bits.

    The cross-executor determinism contract holds per kernel backend:
    the fused and float32-staged backends may differ from the numpy
    reference (different summation orders / precision), but each of them
    must itself be bit-stable across serial, thread and batched runs.
    """
    config = GDConfig(iterations=12, seed=17, kernel_backend=kernel_backend)
    reference = recursive_bisection(social_graph, social_weights, 4, 0.05, config,
                                    parallelism="serial")
    for parallelism in ("thread", "batched"):
        partition = recursive_bisection(social_graph, social_weights, 4, 0.05, config,
                                        parallelism=parallelism, max_workers=2)
        assert np.array_equal(partition.assignment, reference.assignment), \
            (kernel_backend, parallelism)


@pytest.mark.parametrize("kernel_backend", ["fused", "fused32"])
def test_kernel_backend_survives_process_pool(social_graph, social_weights, kernel_backend):
    """Backends are constructed per worker, so the process pool (pickled
    configs, no shared backend state) must reproduce the serial bits."""
    config = GDConfig(iterations=10, seed=23, kernel_backend=kernel_backend)
    serial = recursive_bisection(social_graph, social_weights, 4, 0.05, config)
    pooled = recursive_bisection(social_graph, social_weights, 4, 0.05, config,
                                 parallelism="process", max_workers=2)
    assert np.array_equal(serial.assignment, pooled.assignment)


def test_config_knobs_equal_keyword_overrides(social_graph, social_weights):
    config = GDConfig(iterations=12, seed=3, parallelism="thread", max_workers=2)
    via_config = recursive_bisection(social_graph, social_weights, 4, 0.05, config)
    via_kwargs = recursive_bisection(social_graph, social_weights, 4, 0.05,
                                     GDConfig(iterations=12, seed=3),
                                     parallelism="thread", max_workers=2)
    assert np.array_equal(via_config.assignment, via_kwargs.assignment)


def test_partitioner_accepts_parallelism_overrides(social_graph, social_weights):
    serial = GDPartitioner(epsilon=0.05, config=GDConfig(iterations=12, seed=9))
    threaded = GDPartitioner(epsilon=0.05, config=GDConfig(iterations=12, seed=9),
                             parallelism="thread", max_workers=2)
    assert threaded.config.parallelism == "thread"
    assert threaded.config.max_workers == 2
    a = serial.partition(social_graph, social_weights, 4)
    b = threaded.partition(social_graph, social_weights, 4)
    assert np.array_equal(a.assignment, b.assignment)


@pytest.mark.parametrize("num_parts", [3, 5, 7])
def test_odd_k_meets_epsilon_budget_in_parallel_mode(social_graph, social_weights, num_parts):
    epsilon = 0.05
    partition = recursive_bisection(social_graph, social_weights, num_parts, epsilon,
                                    GDConfig(iterations=25, seed=2),
                                    parallelism="thread", max_workers=2)
    assert partition.num_parts == num_parts
    assert set(np.unique(partition.assignment)) == set(range(num_parts))
    values = imbalance(partition, social_weights)
    assert np.all(values <= epsilon + 1e-9)


@pytest.mark.slow
def test_process_backend_bit_identical_on_large_graph():
    """Acceptance-criteria scenario: generator graph with >= 100k edges, k=8."""
    graph = fb_like(80, scale=4.0, seed=0)
    assert graph.num_edges >= 100_000
    weights = standard_weights(graph, 2)
    config = GDConfig(iterations=30, seed=42)
    serial = recursive_bisection(graph, weights, 8, 0.05, config)
    for parallelism in ("process", "batched", "shm"):
        parallel = recursive_bisection(graph, weights, 8, 0.05, config,
                                       parallelism=parallelism, max_workers=4)
        assert np.array_equal(serial.assignment, parallel.assignment), parallelism
