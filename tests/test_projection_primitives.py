"""Unit tests for projection primitives: box, hyperplane, band, feasible region."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.projection import (
    FeasibleRegion,
    project_onto_band,
    project_onto_box,
    project_onto_hyperplane,
    truncate,
)


class TestBox:
    def test_inside_unchanged(self):
        point = np.array([0.5, -0.3, 0.0])
        assert np.array_equal(project_onto_box(point), point)

    def test_clipping(self):
        assert np.array_equal(project_onto_box(np.array([2.0, -3.0, 0.5])),
                              [1.0, -1.0, 0.5])

    def test_custom_radius(self):
        assert np.array_equal(project_onto_box(np.array([2.0, -2.0]), radius=0.5),
                              [0.5, -0.5])

    def test_truncate_alias(self):
        assert np.array_equal(truncate(np.array([1.5, -1.5, 0.2])), [1.0, -1.0, 0.2])


class TestHyperplane:
    def test_result_on_plane(self):
        point = np.array([1.0, 2.0, 3.0])
        weights = np.array([1.0, 1.0, 1.0])
        projected = project_onto_hyperplane(point, weights, target=0.0)
        assert np.isclose(weights @ projected, 0.0)

    def test_point_on_plane_unchanged(self):
        point = np.array([1.0, -1.0])
        weights = np.array([1.0, 1.0])
        projected = project_onto_hyperplane(point, weights, target=0.0)
        assert np.allclose(projected, point)

    def test_is_closest_point(self):
        rng = np.random.default_rng(0)
        point = rng.normal(size=5)
        weights = rng.random(5) + 0.1
        projected = project_onto_hyperplane(point, weights, target=1.0)
        # Any other on-plane point is at least as far away.
        for _ in range(20):
            other = rng.normal(size=5)
            other = project_onto_hyperplane(other, weights, target=1.0)
            assert np.linalg.norm(point - projected) <= np.linalg.norm(point - other) + 1e-9

    def test_zero_weights_returns_copy(self):
        point = np.array([1.0, 2.0])
        projected = project_onto_hyperplane(point, np.zeros(2), target=5.0)
        assert np.array_equal(projected, point)
        assert projected is not point


class TestBand:
    def test_inside_unchanged(self):
        point = np.array([0.1, -0.1])
        projected = project_onto_band(point, np.ones(2), lower=-1.0, upper=1.0)
        assert np.array_equal(projected, point)

    def test_projects_to_nearest_face(self):
        point = np.array([2.0, 2.0])
        projected = project_onto_band(point, np.ones(2), lower=-1.0, upper=1.0)
        assert np.isclose(np.ones(2) @ projected, 1.0)

    def test_lower_face(self):
        point = np.array([-3.0, -3.0])
        projected = project_onto_band(point, np.ones(2), lower=-1.0, upper=1.0)
        assert np.isclose(np.ones(2) @ projected, -1.0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            project_onto_band(np.zeros(2), np.ones(2), lower=1.0, upper=-1.0)


class TestFeasibleRegion:
    def test_balanced_constructor(self):
        weights = np.array([[1.0, 1.0, 1.0, 1.0]])
        region = FeasibleRegion.balanced(weights, epsilon=0.25)
        assert np.allclose(region.lower, [-1.0])
        assert np.allclose(region.upper, [1.0])

    def test_contains_origin(self):
        region = FeasibleRegion.balanced(np.ones((2, 6)), epsilon=0.1)
        assert region.contains(np.zeros(6))

    def test_rejects_box_violation(self):
        region = FeasibleRegion.balanced(np.ones((1, 3)), epsilon=1.0)
        assert not region.contains(np.array([1.5, 0.0, 0.0]))

    def test_rejects_band_violation(self):
        region = FeasibleRegion.balanced(np.ones((1, 4)), epsilon=0.1)
        assert not region.contains(np.array([1.0, 1.0, 1.0, 1.0]))

    def test_violation_zero_inside(self):
        region = FeasibleRegion.balanced(np.ones((1, 4)), epsilon=0.5)
        assert region.violation(np.zeros(4)) == 0.0

    def test_violation_positive_outside(self):
        region = FeasibleRegion.balanced(np.ones((1, 4)), epsilon=0.1)
        assert region.violation(np.ones(4)) > 0.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            FeasibleRegion(weights=np.ones((1, 3)), lower=np.array([1.0]),
                           upper=np.array([-1.0]))

    def test_mismatched_bound_length_rejected(self):
        with pytest.raises(ValueError):
            FeasibleRegion(weights=np.ones((2, 3)), lower=np.array([0.0]),
                           upper=np.array([0.0]))

    def test_weighted_sums(self):
        weights = np.array([[1.0, 2.0, 3.0]])
        region = FeasibleRegion.balanced(weights, epsilon=1.0)
        assert np.allclose(region.weighted_sums(np.array([1.0, 1.0, 1.0])), [6.0])

    def test_restrict_shifts_bounds(self):
        weights = np.array([[1.0, 1.0, 1.0, 1.0]])
        region = FeasibleRegion.balanced(weights, epsilon=0.5)  # bounds ±2
        free = np.array([True, True, False, False])
        restricted = region.restrict(free, fixed_values=np.array([1.0, 1.0]))
        assert np.allclose(restricted.lower, [-4.0])
        assert np.allclose(restricted.upper, [0.0])
        assert restricted.num_vertices == 2

    def test_restrict_wrong_mask_length(self):
        region = FeasibleRegion.balanced(np.ones((1, 4)), epsilon=0.5)
        with pytest.raises(ValueError):
            region.restrict(np.array([True, False]), np.array([1.0]))
