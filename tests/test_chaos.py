"""Acceptance tests of the fault-injection + self-healing stack.

The three contracts from the resilience PR, each driven end to end by a
seeded :class:`~repro.faults.FaultPlan`:

* the chaos storm (two repair-worker crashes while holding a batch, a
  failed absorb, a slow absorb, a client disconnect) completes with zero
  failed lookups and the ``health`` verb walking ``ok → … → degraded →
  … → ok``;
* recursive bisection survives crashed/hung pool workers with a
  **bit-identical** assignment (retries re-derive their seeds from the
  task coordinate);
* a run killed at any checkpoint resumes to a **bit-identical**
  assignment (hypothesis-tested over kill points and seeds).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CheckpointMismatch,
    FrontierCheckpoint,
    GDConfig,
    recursive_bisection,
)
from repro.faults import FaultPlan, FaultSpec, InjectedFault, inject
from repro.graphs import Graph, standard_weights
from repro.serve.chaos import build_chaos_service, default_chaos_plan, run_chaos


def _ring_graph(n: int = 64) -> Graph:
    return Graph.from_edges(n, [(i, (i + 1) % n) for i in range(n)]
                            + [(i, (i + 5) % n) for i in range(n)])


# --------------------------------------------------------------------- #
# The chaos storm (the CI chaos lane's scenario, in-process)
# --------------------------------------------------------------------- #
class TestChaosScenario:
    @pytest.fixture(scope="class")
    def chaos_report(self):
        service = build_chaos_service(num_vertices=300, num_parts=4, seed=0)
        return asyncio.run(run_chaos(service, default_chaos_plan(0)))

    def test_storm_recovers(self, chaos_report):
        assert chaos_report.recovered, chaos_report.as_dict()

    def test_no_lookup_ever_fails(self, chaos_report):
        assert chaos_report.failed_lookups == 0
        assert chaos_report.lookups > 0

    def test_health_walks_ok_degraded_ok(self, chaos_report):
        sequence = chaos_report.health_sequence
        assert sequence[0] == "ok"
        assert "degraded" in sequence
        assert chaos_report.final_status == "ok"

    def test_both_worker_crashes_recovered(self, chaos_report):
        assert chaos_report.worker_restarts == 2
        assert chaos_report.repair_recoveries == 2

    def test_every_surviving_batch_was_absorbed(self, chaos_report):
        # 4 sent: the crashed worker's batch is re-processed (not lost),
        # exactly one fails in absorb by plan.
        assert chaos_report.churn_batches == 4
        assert chaos_report.batches_applied == 3
        assert chaos_report.batches_failed == 1


# --------------------------------------------------------------------- #
# Executor resilience keeps the determinism contract
# --------------------------------------------------------------------- #
class TestBitIdenticalUnderFaults:
    @pytest.mark.parametrize("spec", [
        FaultSpec(site="executor.task", at=None, label="depth=1/part=0",
                  kind="crash"),
        FaultSpec(site="executor.task", at=None, label="depth=1/part=2",
                  kind="hang", duration=30.0),
    ], ids=["worker-crash", "worker-hang"])
    def test_process_pool_recovers_bit_identically(self, spec):
        """Crash or hang one specific task of wave 1; the rebuilt pool's
        retries must reproduce the clean run's bits."""
        graph = _ring_graph()
        weights = standard_weights(graph, 2)
        config = GDConfig(iterations=8, seed=13, task_retries=3,
                          task_timeout_seconds=2.0)
        reference = recursive_bisection(graph, weights, 4, 0.05, config)
        with inject(FaultPlan(faults=(spec,))):
            survived = recursive_bisection(graph, weights, 4, 0.05, config,
                                           parallelism="process",
                                           max_workers=2)
        assert np.array_equal(survived.assignment, reference.assignment)

    def test_thread_retry_is_bit_identical(self):
        graph = _ring_graph()
        weights = standard_weights(graph, 2)
        config = GDConfig(iterations=8, seed=5, task_retries=2)
        reference = recursive_bisection(graph, weights, 4, 0.05, config)
        plan = FaultPlan(faults=(FaultSpec(site="executor.task", at=None,
                                           label="depth=1/part=0"),))
        with inject(plan):
            survived = recursive_bisection(graph, weights, 4, 0.05, config,
                                           parallelism="thread", max_workers=2)
        assert np.array_equal(survived.assignment, reference.assignment)


# --------------------------------------------------------------------- #
# Checkpoint / resume
# --------------------------------------------------------------------- #
class TestCheckpointResume:
    def _run_with_checkpoints(self, graph, weights, num_parts, config):
        checkpoints: list[FrontierCheckpoint] = []
        partition = recursive_bisection(graph, weights, num_parts, 0.05,
                                        config,
                                        checkpoint_sink=checkpoints.append)
        return partition, checkpoints

    def test_kill_at_wave_then_resume_is_bit_identical(self):
        """Die *at* a wave (after its checkpoint was written) via an
        injected fault, then resume from the captured checkpoint."""
        graph = _ring_graph()
        weights = standard_weights(graph, 2)
        config = GDConfig(iterations=8, seed=3)
        reference, checkpoints = self._run_with_checkpoints(
            graph, weights, 8, config)
        # ⌈log₂ 8⌉ = 3 splitting waves plus the final assignment-only wave;
        # level 0 is never checkpointed (no progress to save).
        assert [c.level for c in checkpoints] == [1, 2, 3]

        killed: list[FrontierCheckpoint] = []
        plan = FaultPlan(faults=(FaultSpec(site="recursive.wave", at=None,
                                           label="level=2",
                                           message="killed at wave 2"),))
        with inject(plan):
            with pytest.raises(InjectedFault):
                recursive_bisection(graph, weights, 8, 0.05, config,
                                    checkpoint_sink=killed.append)
        assert [c.level for c in killed] == [1, 2]
        resumed = recursive_bisection(graph, weights, 8, 0.05, config,
                                      resume_from=killed[-1])
        assert np.array_equal(resumed.assignment, reference.assignment)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           kill_index=st.integers(min_value=0, max_value=5),
           num_parts=st.sampled_from([5, 8, 13]))
    def test_resume_from_any_checkpoint_is_bit_identical(self, seed,
                                                         kill_index,
                                                         num_parts):
        """The acceptance property: for arbitrary seeds and a kill at a
        random checkpoint, resume reproduces the uninterrupted bits."""
        graph = _ring_graph()
        weights = standard_weights(graph, 2)
        config = GDConfig(iterations=6, seed=seed)
        reference, checkpoints = self._run_with_checkpoints(
            graph, weights, num_parts, config)
        assert checkpoints, "k >= 4 must produce at least one checkpoint"
        checkpoint = checkpoints[kill_index % len(checkpoints)]
        resumed = recursive_bisection(graph, weights, num_parts, 0.05, config,
                                      resume_from=checkpoint)
        assert np.array_equal(resumed.assignment, reference.assignment)

    def test_checkpoint_every_thins_the_stream(self):
        graph = _ring_graph()
        weights = standard_weights(graph, 2)
        config = GDConfig(iterations=6, seed=1)
        _, every = self._run_with_checkpoints(graph, weights, 16, config)
        thinned: list[FrontierCheckpoint] = []
        recursive_bisection(graph, weights, 16, 0.05, config,
                            checkpoint_sink=thinned.append,
                            checkpoint_every=2)
        assert [c.level for c in every] == [1, 2, 3, 4]
        assert [c.level for c in thinned] == [2, 4]
        with pytest.raises(ValueError, match="checkpoint_every"):
            recursive_bisection(graph, weights, 4, 0.05, config,
                                checkpoint_sink=thinned.append,
                                checkpoint_every=0)

    def test_resume_rejects_mismatched_run(self):
        """A checkpoint from a different graph/seed/k must be refused
        loudly, not silently produce garbage."""
        graph = _ring_graph()
        weights = standard_weights(graph, 2)
        config = GDConfig(iterations=6, seed=2)
        _, checkpoints = self._run_with_checkpoints(graph, weights, 8, config)
        checkpoint = checkpoints[-1]
        with pytest.raises(CheckpointMismatch, match="seed"):
            recursive_bisection(graph, weights, 8, 0.05,
                                config.with_updates(seed=99),
                                resume_from=checkpoint)
        with pytest.raises(CheckpointMismatch, match="num_parts"):
            recursive_bisection(graph, weights, 5, 0.05, config,
                                resume_from=checkpoint)
        other = _ring_graph(64 + 8)
        with pytest.raises(CheckpointMismatch, match="num_vertices"):
            recursive_bisection(other, standard_weights(other, 2), 8, 0.05,
                                config, resume_from=checkpoint)

    def test_checkpoint_serialization_round_trip(self):
        graph = _ring_graph()
        weights = standard_weights(graph, 2)
        config = GDConfig(iterations=6, seed=4)
        reference, checkpoints = self._run_with_checkpoints(
            graph, weights, 8, config)
        blob = checkpoints[-1].to_bytes()
        rebuilt = FrontierCheckpoint.from_bytes(blob,
                                                meta=checkpoints[-1].meta)
        assert rebuilt.level == checkpoints[-1].level
        np.testing.assert_array_equal(rebuilt.assignment,
                                      checkpoints[-1].assignment)
        resumed = recursive_bisection(graph, weights, 8, 0.05, config,
                                      resume_from=rebuilt)
        assert np.array_equal(resumed.assignment, reference.assignment)
