"""Tests of the shared coarsening layer (graphs/coarsening.py).

Covers the invariants the multilevel V-cycle and the METIS-like baseline
both rely on: per-dimension vertex-weight conservation, edge-weight
accounting across contraction, exact prolongate/restrict round trips,
determinism of seeded matchings, and the baseline's delegation to the
shared implementations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.baselines.metis_like import MetisLikePartitioner
from repro.graphs import (
    CoarseningHierarchy,
    Graph,
    contract,
    handshake_matching,
    heavy_edge_matching,
    standard_weights,
)
from repro.graphs.coarsening import cluster_labels


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
@st.composite
def small_weighted_graphs(draw):
    """A connected-ish random graph with 1-3 positive weight dimensions."""
    n = draw(st.integers(min_value=2, max_value=40))
    num_edges = draw(st.integers(min_value=1, max_value=3 * n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(num_edges, 2))
    graph = Graph.from_edges(n, edges)
    d = draw(st.integers(min_value=1, max_value=3))
    weights = rng.uniform(0.5, 3.0, size=(d, n))
    return graph, weights, seed


def _total_edge_weight(adjacency: sparse.csr_matrix) -> float:
    return float(adjacency.sum()) / 2.0


# --------------------------------------------------------------------- #
# Contraction invariants
# --------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None)
@given(small_weighted_graphs())
def test_contraction_conserves_vertex_weight_totals(data):
    """Σ per-dimension vertex weight is identical at every level."""
    graph, weights, seed = data
    hierarchy = CoarseningHierarchy.build(graph, weights, coarsest_size=4,
                                          rng=seed, matching="handshake")
    totals = weights.sum(axis=1)
    for level in hierarchy.levels:
        np.testing.assert_allclose(level.vertex_weights.sum(axis=1), totals,
                                   rtol=1e-12)


@settings(max_examples=40, deadline=None)
@given(small_weighted_graphs())
def test_contraction_accounts_for_every_edge_weight(data):
    """Coarse edge weight plus collapsed intra-cluster weight equals the
    fine total — no weight is created or silently dropped."""
    graph, weights, seed = data
    hierarchy = CoarseningHierarchy.build(graph, weights, coarsest_size=4,
                                          rng=seed, matching="handshake")
    for fine, coarse in zip(hierarchy.levels, hierarchy.levels[1:]):
        mapping = coarse.fine_to_coarse
        upper = sparse.triu(fine.adjacency, k=1).tocoo()
        collapsed = float(upper.data[mapping[upper.row] == mapping[upper.col]].sum())
        np.testing.assert_allclose(
            _total_edge_weight(coarse.adjacency) + collapsed,
            _total_edge_weight(fine.adjacency), rtol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_weighted_graphs())
def test_prolongate_restrict_round_trips_labels_exactly(data):
    """restrict(prolongate(x)) is the identity for coarse label vectors,
    and prolongated labels are constant within every cluster."""
    graph, weights, seed = data
    hierarchy = CoarseningHierarchy.build(graph, weights, coarsest_size=4,
                                          rng=seed, matching="handshake")
    rng = np.random.default_rng(seed)
    for level in range(1, hierarchy.num_levels):
        labels = rng.integers(0, 2, size=hierarchy.levels[level].num_vertices)
        fine = hierarchy.prolongate(labels, level)
        assert np.array_equal(hierarchy.restrict(fine, level - 1), labels)
        mapping = hierarchy.levels[level].fine_to_coarse
        # Constant within clusters: every fine member carries its parent's label.
        assert np.array_equal(fine, labels[mapping])


def test_contract_matches_brute_force_on_a_known_graph():
    """Hand-checkable contraction: a 4-cycle with one matched pair."""
    graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    adjacency = graph.adjacency_matrix()
    weights = np.array([[1.0, 2.0, 3.0, 4.0]])
    matching = np.array([1, 0, 2, 3])  # match 0-1; 2 and 3 stay singletons
    level = contract(adjacency, weights, matching)
    assert level.num_vertices == 3
    # Coarse vertex 0 = {0, 1}: weight 3; edges to both 2 (from 1) and 3 (from 0).
    np.testing.assert_allclose(level.vertex_weights, [[3.0, 3.0, 4.0]])
    dense = level.adjacency.toarray()
    expected = np.array([[0.0, 1.0, 1.0],
                         [1.0, 0.0, 1.0],
                         [1.0, 1.0, 0.0]])
    np.testing.assert_allclose(dense, expected)
    assert np.array_equal(level.fine_to_coarse, [0, 0, 1, 2])


# --------------------------------------------------------------------- #
# Matchings
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("matcher", [heavy_edge_matching, handshake_matching])
def test_matchings_are_involutions(matcher, social_graph):
    adjacency = social_graph.adjacency_matrix()
    match = matcher(adjacency, np.random.default_rng(3))
    vertices = np.arange(social_graph.num_vertices)
    # match is an involution: partner's partner is the vertex itself.
    assert np.array_equal(match[match], vertices)
    # Matched pairs are actual edges.
    paired = vertices[match != vertices]
    for vertex in paired[:50]:
        assert match[vertex] in social_graph.neighbors(vertex)


@pytest.mark.parametrize("matching", ["sequential", "handshake", "cluster"])
def test_hierarchy_build_is_seed_deterministic(matching, social_graph):
    weights = standard_weights(social_graph, 2)
    a = CoarseningHierarchy.build(social_graph, weights, coarsest_size=32,
                                  rng=11, matching=matching)
    b = CoarseningHierarchy.build(social_graph, weights, coarsest_size=32,
                                  rng=11, matching=matching)
    assert a.sizes == b.sizes
    for la, lb in zip(a.levels, b.levels):
        assert (la.adjacency != lb.adjacency).nnz == 0
        np.testing.assert_array_equal(la.vertex_weights, lb.vertex_weights)
        if la.fine_to_coarse is not None:
            np.testing.assert_array_equal(la.fine_to_coarse, lb.fine_to_coarse)


def test_cluster_labels_respect_weight_caps(social_graph):
    weights = standard_weights(social_graph, 2)
    labels = cluster_labels(social_graph.adjacency_matrix(), weights,
                            np.random.default_rng(0), target_clusters=16,
                            max_cluster_fraction=0.05)
    _, compact = np.unique(labels, return_inverse=True)
    for row in weights:
        cluster_weight = np.bincount(compact, weights=row)
        assert cluster_weight.max() <= 0.05 * row.sum() + row.max()


def test_hierarchy_stalls_gracefully_on_a_star(small_star):
    """Star graphs are matching-hostile: the hierarchy must stop, not spin."""
    weights = standard_weights(small_star, 1)
    hierarchy = CoarseningHierarchy.build(small_star, weights, coarsest_size=4,
                                          rng=0, matching="cluster")
    assert hierarchy.num_levels >= 1
    assert hierarchy.sizes[0] == small_star.num_vertices


def test_graph_at_reconstructs_the_pattern(social_graph):
    weights = standard_weights(social_graph, 1)
    hierarchy = CoarseningHierarchy.build(social_graph, weights,
                                          coarsest_size=64, rng=5,
                                          matching="handshake")
    assert hierarchy.graph_at(0) is social_graph
    level = hierarchy.num_levels - 1
    coarse_graph = hierarchy.graph_at(level)
    adjacency = hierarchy.adjacency_at(level)
    assert coarse_graph.num_vertices == adjacency.shape[0]
    pattern = adjacency.copy()
    pattern.data[:] = 1.0
    assert (coarse_graph.adjacency_matrix() != pattern).nnz == 0


# --------------------------------------------------------------------- #
# METIS-like delegation (the deduplication satellite)
# --------------------------------------------------------------------- #
def test_metis_coarsen_delegates_to_shared_hierarchy(social_graph):
    """The baseline's _coarsen is a thin wrapper over the shared builder:
    identical levels for an identically-seeded RNG."""
    weights = standard_weights(social_graph, 2)
    adjacency = social_graph.adjacency_matrix()
    partitioner = MetisLikePartitioner(seed=0, coarsest_size=32)
    levels = partitioner._coarsen(adjacency, weights, np.random.default_rng(4))
    reference = CoarseningHierarchy.build(adjacency, weights, coarsest_size=32,
                                          rng=np.random.default_rng(4),
                                          matching="sequential").levels
    assert len(levels) == len(reference)
    for ours, theirs in zip(levels, reference):
        assert (ours.adjacency != theirs.adjacency).nnz == 0
        np.testing.assert_array_equal(ours.vertex_weights, theirs.vertex_weights)


def test_metis_output_is_seed_stable(social_graph, social_weights):
    """Fixed seed ⇒ identical partition across runs of the refactored code."""
    a = MetisLikePartitioner(seed=3).partition(social_graph, social_weights, 4)
    b = MetisLikePartitioner(seed=3).partition(social_graph, social_weights, 4)
    assert np.array_equal(a.assignment, b.assignment)


def test_build_rejects_unknown_matching(social_graph):
    weights = standard_weights(social_graph, 1)
    with pytest.raises(ValueError, match="matching"):
        CoarseningHierarchy.build(social_graph, weights, matching="magnetic")


def test_prolongate_restrict_validate_levels(social_graph):
    weights = standard_weights(social_graph, 1)
    hierarchy = CoarseningHierarchy.build(social_graph, weights,
                                          coarsest_size=64, rng=1,
                                          matching="cluster")
    with pytest.raises(ValueError):
        hierarchy.prolongate(np.zeros(3), 0)
    with pytest.raises(ValueError):
        hierarchy.restrict(np.zeros(3), hierarchy.num_levels - 1)
