"""Unit tests for graph / partition / weight IO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    load_graph_npz,
    read_edge_list,
    read_partition,
    read_weights,
    save_graph_npz,
    standard_weights,
    write_edge_list,
    write_partition,
    write_weights,
)


class TestEdgeList:
    def test_roundtrip(self, social_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(social_graph, path)
        loaded = read_edge_list(path, num_vertices=social_graph.num_vertices)
        assert loaded.num_vertices == social_graph.num_vertices
        assert np.array_equal(loaded.edges, social_graph.edges)

    def test_infers_vertex_count(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n1 5\n")
        graph = read_edge_list(path)
        assert graph.num_vertices == 6

    def test_skips_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n\n0 1\n# another\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("")
        graph = read_edge_list(path)
        assert graph.num_vertices == 0


class TestNpz:
    def test_roundtrip(self, social_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_graph_npz(social_graph, path)
        loaded = load_graph_npz(path)
        assert loaded.num_vertices == social_graph.num_vertices
        assert np.array_equal(loaded.edges, social_graph.edges)
        assert np.array_equal(loaded.indptr, social_graph.indptr)
        assert np.array_equal(loaded.indices, social_graph.indices)

    def test_roundtrip_empty_graph(self, tmp_path):
        graph = Graph.from_edges(4, [])
        path = tmp_path / "empty.npz"
        save_graph_npz(graph, path)
        assert load_graph_npz(path).num_edges == 0


class TestPartitionIO:
    def test_roundtrip(self, tmp_path):
        assignment = np.array([0, 1, 2, 1, 0])
        path = tmp_path / "parts.txt"
        write_partition(assignment, path)
        assert np.array_equal(read_partition(path), assignment)


class TestWeightsIO:
    def test_roundtrip(self, social_graph, tmp_path):
        weights = standard_weights(social_graph, 3)
        path = tmp_path / "weights.txt"
        write_weights(weights, path, names=["unit", "degree", "nds"])
        loaded = read_weights(path)
        assert loaded.shape == weights.shape
        assert np.allclose(loaded, weights)

    def test_single_dimension_roundtrip(self, tmp_path):
        weights = np.array([1.0, 2.5, 3.25])
        path = tmp_path / "w.txt"
        write_weights(weights, path)
        assert np.allclose(read_weights(path), weights[None, :])

    def test_name_count_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            write_weights(np.ones((2, 3)), tmp_path / "w.txt", names=["only-one"])

    def test_empty_file(self, tmp_path):
        path = tmp_path / "w.txt"
        path.write_text("# {}\n")
        assert read_weights(path).size == 0
