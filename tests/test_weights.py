"""Unit tests for the vertex weight functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    degree_weights,
    neighbor_degree_sum_weights,
    pagerank_weights,
    standard_weights,
    unit_weights,
    weight_matrix,
)


class TestUnitWeights:
    def test_all_ones(self, social_graph):
        weights = unit_weights(social_graph)
        assert np.all(weights == 1.0)
        assert weights.shape == (social_graph.num_vertices,)


class TestDegreeWeights:
    def test_matches_degrees(self, triangle_graph):
        assert np.array_equal(degree_weights(triangle_graph), [2, 2, 2])

    def test_isolated_vertex_gets_floor(self):
        graph = Graph.from_edges(3, [(0, 1)])
        weights = degree_weights(graph)
        assert weights[2] > 0
        assert weights[2] < 1

    def test_strictly_positive(self, social_graph):
        assert np.all(degree_weights(social_graph) > 0)


class TestNeighborDegreeSum:
    def test_path_values(self, path_graph):
        # Path 0-1-2-3-4-5: degree = [1,2,2,2,2,1].
        weights = neighbor_degree_sum_weights(path_graph)
        assert weights[0] == 2.0            # neighbor 1 has degree 2
        assert weights[1] == 1.0 + 2.0      # neighbors 0 and 2
        assert weights[2] == 2.0 + 2.0

    def test_star_hub(self, small_star):
        weights = neighbor_degree_sum_weights(small_star)
        assert weights[0] == 12.0           # 12 leaves of degree 1
        assert np.all(weights[1:] == 12.0)  # each leaf sees only the hub

    def test_empty_graph_uses_floor(self):
        graph = Graph.from_edges(4, [])
        weights = neighbor_degree_sum_weights(graph)
        assert np.all(weights > 0)


class TestPagerank:
    def test_sums_to_vertex_count(self, social_graph):
        weights = pagerank_weights(social_graph)
        assert np.isclose(weights.sum(), social_graph.num_vertices)

    def test_hub_has_largest_rank(self, small_star):
        weights = pagerank_weights(small_star)
        assert np.argmax(weights) == 0

    def test_uniform_on_regular_graph(self, triangle_graph):
        weights = pagerank_weights(triangle_graph)
        assert np.allclose(weights, weights[0])

    def test_positive(self, social_graph):
        assert np.all(pagerank_weights(social_graph) > 0)

    def test_empty_graph(self):
        weights = pagerank_weights(Graph.from_edges(0, []))
        assert weights.size == 0


class TestWeightMatrix:
    def test_shape(self, social_graph):
        matrix = weight_matrix(social_graph, ["unit", "degree"])
        assert matrix.shape == (2, social_graph.num_vertices)

    def test_unknown_name(self, social_graph):
        with pytest.raises(KeyError):
            weight_matrix(social_graph, ["unit", "nope"])

    def test_empty_names(self, social_graph):
        with pytest.raises(ValueError):
            weight_matrix(social_graph, [])

    def test_standard_weights_dimensions(self, social_graph):
        for d in (1, 2, 3, 4):
            assert standard_weights(social_graph, d).shape[0] == d

    def test_standard_weights_invalid_dimension(self, social_graph):
        with pytest.raises(ValueError):
            standard_weights(social_graph, 5)

    def test_standard_weights_order(self, social_graph):
        matrix = standard_weights(social_graph, 2)
        assert np.all(matrix[0] == 1.0)
        assert np.allclose(matrix[1], degree_weights(social_graph))
