"""Property-based tests (hypothesis) for the projection algorithms.

These check the mathematical invariants of the projection step on randomly
generated instances: feasibility, idempotence, constraint satisfaction of
the equality solvers, and optimality relative to independent methods.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.projection import (
    DykstraProjector,
    ExactProjector,
    FeasibleRegion,
    project_onto_band,
    project_onto_box,
    solve_lambda_1d,
    truncate,
    weighted_truncated_sum,
)

_SIZES = st.integers(min_value=2, max_value=40)


def _points(n):
    return hnp.arrays(np.float64, n, elements=st.floats(-5.0, 5.0, allow_nan=False))


def _weights(n):
    return hnp.arrays(np.float64, n, elements=st.floats(0.1, 5.0, allow_nan=False))


class TestBoxProperties:
    @given(point=_points(25))
    def test_projection_inside_box(self, point):
        assert np.all(np.abs(project_onto_box(point)) <= 1.0)

    @given(point=_points(25))
    def test_idempotent(self, point):
        once = project_onto_box(point)
        assert np.array_equal(project_onto_box(once), once)

    @given(point=_points(25))
    def test_never_moves_interior_coordinates(self, point):
        projected = project_onto_box(point)
        interior = np.abs(point) <= 1.0
        assert np.array_equal(projected[interior], point[interior])


class TestBandProperties:
    @given(point=_points(20), weights=_weights(20),
           slack=st.floats(0.1, 3.0))
    def test_result_inside_band(self, point, weights, slack):
        projected = project_onto_band(point, weights, -slack, slack)
        assert -slack - 1e-7 <= float(weights @ projected) <= slack + 1e-7

    @given(point=_points(20), weights=_weights(20), slack=st.floats(0.1, 3.0))
    def test_idempotent(self, point, weights, slack):
        once = project_onto_band(point, weights, -slack, slack)
        twice = project_onto_band(once, weights, -slack, slack)
        assert np.allclose(once, twice, atol=1e-9)


class TestSolve1DProperties:
    @settings(max_examples=60)
    @given(point=_points(30), weights=_weights(30),
           fraction=st.floats(-0.8, 0.8))
    def test_target_satisfied_when_attainable(self, point, weights, fraction):
        target = fraction * weights.sum()
        lam = solve_lambda_1d(point, weights, target)
        assert abs(weighted_truncated_sum(point, weights, lam) - target) < 1e-6

    @settings(max_examples=60)
    @given(point=_points(30), weights=_weights(30), fraction=st.floats(-0.8, 0.8))
    def test_solution_in_box(self, point, weights, fraction):
        lam = solve_lambda_1d(point, weights, fraction * weights.sum())
        x = truncate(point - lam * weights)
        assert np.all(np.abs(x) <= 1.0)


class TestExactProjectorProperties:
    @settings(max_examples=30, deadline=None)
    @given(point=_points(20), degree_like=_weights(20),
           epsilon=st.floats(0.02, 0.5))
    def test_feasible_and_idempotent(self, point, degree_like, epsilon):
        weights = np.vstack([np.ones_like(degree_like), degree_like])
        region = FeasibleRegion.balanced(weights, epsilon)
        projector = ExactProjector(region)
        x = projector.project(point)
        assert region.contains(x, tolerance=1e-5)
        assert np.allclose(projector.project(x), x, atol=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(point=_points(12), degree_like=_weights(12), epsilon=st.floats(0.05, 0.5))
    def test_no_farther_than_dykstra(self, point, degree_like, epsilon):
        weights = np.vstack([np.ones_like(degree_like), degree_like])
        region = FeasibleRegion.balanced(weights, epsilon)
        exact = ExactProjector(region).project(point)
        dykstra = DykstraProjector(region, max_rounds=2000).project(point)
        assert (np.linalg.norm(point - exact)
                <= np.linalg.norm(point - dykstra) + 1e-4)
