"""Unit tests for the baseline partitioners (Hash, Spinner, BLP, SHP, METIS-like)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BalancedLabelPropagation,
    HashPartitioner,
    MetisLikePartitioner,
    SocialHashPartitioner,
    SpinnerPartitioner,
)
from repro.graphs import Graph, standard_weights, unit_weights
from repro.partition import edge_locality, imbalance, max_imbalance

ALL_BASELINES = [
    HashPartitioner,
    SpinnerPartitioner,
    BalancedLabelPropagation,
    SocialHashPartitioner,
    MetisLikePartitioner,
]


class TestCommonContract:
    @pytest.mark.parametrize("factory", ALL_BASELINES)
    @pytest.mark.parametrize("num_parts", [2, 4])
    def test_valid_partition(self, factory, num_parts, social_graph, social_weights):
        partition = factory().partition(social_graph, social_weights, num_parts)
        assert partition.num_parts == num_parts
        assert partition.assignment.shape == (social_graph.num_vertices,)
        assert partition.assignment.min() >= 0
        assert partition.assignment.max() < num_parts

    @pytest.mark.parametrize("factory", ALL_BASELINES)
    def test_empty_graph(self, factory):
        graph = Graph.from_edges(0, [])
        partition = factory().partition(graph, np.empty((1, 0)) + 1.0, 2)
        assert partition.assignment.size == 0

    @pytest.mark.parametrize("factory", ALL_BASELINES)
    def test_deterministic_for_seed(self, factory, social_graph, social_weights):
        a = factory().partition(social_graph, social_weights, 2)
        b = factory().partition(social_graph, social_weights, 2)
        assert np.array_equal(a.assignment, b.assignment)

    @pytest.mark.parametrize("factory", ALL_BASELINES)
    def test_rejects_bad_weights(self, factory, social_graph):
        with pytest.raises(ValueError):
            factory().partition(social_graph, np.zeros(social_graph.num_vertices), 2)

    @pytest.mark.parametrize("factory", ALL_BASELINES)
    def test_rejects_bad_num_parts(self, factory, social_graph, social_weights):
        with pytest.raises(ValueError):
            factory().partition(social_graph, social_weights, 0)


class TestHash:
    def test_near_balanced_vertices(self, social_graph, social_weights):
        partition = HashPartitioner().partition(social_graph, social_weights, 4)
        assert imbalance(partition, unit_weights(social_graph))[0] < 0.15

    def test_low_locality_for_many_parts(self, social_graph, social_weights):
        partition = HashPartitioner().partition(social_graph, social_weights, 8)
        assert edge_locality(partition) < 30.0

    def test_salt_changes_assignment(self, social_graph, social_weights):
        a = HashPartitioner(salt=0).partition(social_graph, social_weights, 4)
        b = HashPartitioner(salt=1).partition(social_graph, social_weights, 4)
        assert not np.array_equal(a.assignment, b.assignment)

    def test_stateless_per_vertex(self, social_graph, social_weights):
        # The same vertex id must always map to the same part for a fixed
        # salt and k, independent of the rest of the graph.
        partition = HashPartitioner(salt=5).partition(social_graph, social_weights, 4)
        sub_graph, mapping = social_graph.subgraph(np.arange(50))
        sub_partition = HashPartitioner(salt=5).partition(
            sub_graph, social_weights[:, mapping], 4)
        assert np.array_equal(partition.assignment[:50], sub_partition.assignment)


class TestSpinner:
    def test_improves_locality_over_hash(self, social_graph, social_weights):
        spinner = SpinnerPartitioner(seed=0).partition(social_graph, social_weights, 2)
        hashed = HashPartitioner().partition(social_graph, social_weights, 2)
        assert edge_locality(spinner) > edge_locality(hashed)

    def test_edge_dimension_roughly_balanced(self, social_graph, social_weights):
        partition = SpinnerPartitioner(seed=0).partition(social_graph, social_weights, 2)
        # Spinner's capacity constraint keeps the degree dimension bounded.
        assert imbalance(partition, social_weights)[1] < 0.25

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            SpinnerPartitioner(iterations=0)


class TestBLP:
    def test_multi_dimensional_balance(self, social_graph, social_weights):
        partition = BalancedLabelPropagation(seed=0).partition(
            social_graph, social_weights, 4)
        assert max_imbalance(partition, social_weights) < 0.10

    def test_improves_locality_over_hash(self, lj_graph):
        weights = standard_weights(lj_graph, 2)
        blp = BalancedLabelPropagation(seed=0).partition(lj_graph, weights, 2)
        hashed = HashPartitioner().partition(lj_graph, weights, 2)
        assert edge_locality(blp) > edge_locality(hashed)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BalancedLabelPropagation(clusters_per_part=0)
        with pytest.raises(ValueError):
            BalancedLabelPropagation(clustering_iterations=0)


class TestSHP:
    def test_combined_dimension_balanced(self, social_graph, social_weights):
        partition = SocialHashPartitioner(seed=0).partition(social_graph, social_weights, 2)
        # SHP balances degree (high coefficient); the edge dimension should
        # be much better balanced than a worst-case split.
        assert imbalance(partition, social_weights)[1] < 0.20

    def test_improves_locality_over_hash(self, lj_graph):
        weights = standard_weights(lj_graph, 2)
        shp = SocialHashPartitioner(seed=0).partition(lj_graph, weights, 2)
        hashed = HashPartitioner().partition(lj_graph, weights, 2)
        assert edge_locality(shp) > edge_locality(hashed)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            SocialHashPartitioner(iterations=0)


class TestMetisLike:
    def test_two_way_balance_with_two_constraints(self, social_graph, social_weights):
        partition = MetisLikePartitioner(seed=0).partition(social_graph, social_weights, 2)
        assert max_imbalance(partition, social_weights) < 0.15

    def test_good_locality_on_clique_ring(self, clique_ring):
        weights = standard_weights(clique_ring, 2)
        partition = MetisLikePartitioner(seed=0).partition(clique_ring, weights, 2)
        assert edge_locality(partition) > 85.0

    def test_beats_hash_locality(self, lj_graph):
        weights = standard_weights(lj_graph, 2)
        metis = MetisLikePartitioner(seed=0).partition(lj_graph, weights, 2)
        hashed = HashPartitioner().partition(lj_graph, weights, 2)
        assert edge_locality(metis) > edge_locality(hashed) + 10

    def test_kway_partition(self, social_graph, social_weights):
        partition = MetisLikePartitioner(seed=0).partition(social_graph, social_weights, 4)
        assert partition.num_parts == 4
        assert partition.part_sizes().min() > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MetisLikePartitioner(allowed_imbalance=0.0)
        with pytest.raises(ValueError):
            MetisLikePartitioner(coarsest_size=2)
