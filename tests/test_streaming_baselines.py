"""Unit tests for the streaming partitioners (LDG and Fennel)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import FennelPartitioner, HashPartitioner, LinearDeterministicGreedy
from repro.graphs import Graph, standard_weights, unit_weights
from repro.partition import edge_locality, imbalance

STREAMING = [LinearDeterministicGreedy, FennelPartitioner]


class TestStreamingContract:
    @pytest.mark.parametrize("factory", STREAMING)
    @pytest.mark.parametrize("num_parts", [2, 4])
    def test_valid_partition(self, factory, num_parts, social_graph, social_weights):
        partition = factory().partition(social_graph, social_weights, num_parts)
        assert partition.num_parts == num_parts
        assert partition.assignment.min() >= 0
        assert partition.assignment.max() < num_parts

    @pytest.mark.parametrize("factory", STREAMING)
    def test_every_vertex_assigned(self, factory, social_graph, social_weights):
        partition = factory().partition(social_graph, social_weights, 4)
        assert np.all(partition.assignment >= 0)

    @pytest.mark.parametrize("factory", STREAMING)
    def test_deterministic_for_seed(self, factory, social_graph, social_weights):
        a = factory(seed=3).partition(social_graph, social_weights, 2)
        b = factory(seed=3).partition(social_graph, social_weights, 2)
        assert np.array_equal(a.assignment, b.assignment)

    @pytest.mark.parametrize("factory", STREAMING)
    def test_empty_graph(self, factory):
        graph = Graph.from_edges(0, [])
        partition = factory().partition(graph, np.empty((1, 0)) + 1.0, 2)
        assert partition.assignment.size == 0

    @pytest.mark.parametrize("factory", STREAMING)
    def test_capacity_respected(self, factory, social_graph, social_weights):
        partition = factory().partition(social_graph, social_weights, 4)
        # The streaming capacity is 1.05 * n / k on vertex counts.
        assert imbalance(partition, unit_weights(social_graph))[0] < 0.12

    @pytest.mark.parametrize("factory", STREAMING)
    def test_beats_hash_locality(self, factory, lj_graph):
        weights = standard_weights(lj_graph, 2)
        streamed = factory(seed=0).partition(lj_graph, weights, 2)
        hashed = HashPartitioner().partition(lj_graph, weights, 2)
        assert edge_locality(streamed) > edge_locality(hashed)

    @pytest.mark.parametrize("factory", STREAMING)
    @pytest.mark.parametrize("order", ["random", "natural", "bfs"])
    def test_stream_orders(self, factory, order, social_graph, social_weights):
        partition = factory(stream_order=order).partition(social_graph, social_weights, 2)
        assert partition.num_parts == 2

    @pytest.mark.parametrize("factory", STREAMING)
    def test_unknown_order_rejected(self, factory, social_graph, social_weights):
        with pytest.raises(ValueError):
            factory(stream_order="sorted").partition(social_graph, social_weights, 2)


class TestFennelSpecific:
    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            FennelPartitioner(gamma=1.0)

    def test_bfs_order_beats_random_assignment(self, lj_graph):
        weights = standard_weights(lj_graph, 2)
        bfs_order = FennelPartitioner(stream_order="bfs", seed=0).partition(
            lj_graph, weights, 4)
        # A BFS stream keeps enough locality to clearly beat the 1/k of a
        # random assignment.
        assert edge_locality(bfs_order) > 100.0 / 4 + 10.0
