"""Unit and behavioural tests for the GD bisection algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GDConfig, GDPartitioner, gd_bisect
from repro.graphs import Graph, standard_weights, unit_weights
from repro.partition import edge_locality, is_epsilon_balanced, max_imbalance


def _config(**overrides) -> GDConfig:
    defaults = dict(iterations=50, seed=0)
    defaults.update(overrides)
    return GDConfig(**defaults)


class TestBisectBasics:
    def test_returns_two_way_partition(self, clique_ring):
        weights = standard_weights(clique_ring, 2)
        result = gd_bisect(clique_ring, weights, 0.05, _config())
        assert result.partition.num_parts == 2
        assert result.partition.assignment.shape == (clique_ring.num_vertices,)

    def test_fractional_solution_in_box(self, clique_ring):
        weights = standard_weights(clique_ring, 2)
        result = gd_bisect(clique_ring, weights, 0.05, _config())
        assert np.all(np.abs(result.fractional) <= 1.0 + 1e-9)

    def test_balance_satisfied(self, social_graph, social_weights):
        result = gd_bisect(social_graph, social_weights, 0.05, _config())
        assert is_epsilon_balanced(result.partition, social_weights, epsilon=0.06)

    def test_clique_ring_high_locality(self, clique_ring):
        weights = standard_weights(clique_ring, 2)
        result = gd_bisect(clique_ring, weights, 0.05, _config(iterations=80))
        # The optimal bisection cuts 2 of the ring edges => locality ~ 99%.
        assert edge_locality(result.partition) > 90.0

    def test_beats_random_split(self, social_graph, social_weights):
        result = gd_bisect(social_graph, social_weights, 0.05, _config())
        assert edge_locality(result.partition) > 60.0  # random split ≈ 50%

    def test_empty_graph(self):
        graph = Graph.from_edges(0, [])
        result = gd_bisect(graph, np.empty((1, 0)) + 1.0, 0.05, _config())
        assert result.partition.assignment.size == 0

    def test_deterministic_given_seed(self, social_graph, social_weights):
        a = gd_bisect(social_graph, social_weights, 0.05, _config(seed=9))
        b = gd_bisect(social_graph, social_weights, 0.05, _config(seed=9))
        assert np.array_equal(a.partition.assignment, b.partition.assignment)

    def test_single_weight_dimension(self, social_graph):
        weights = unit_weights(social_graph)
        result = gd_bisect(social_graph, weights, 0.05, _config())
        assert is_epsilon_balanced(result.partition, weights, epsilon=0.06)

    def test_invalid_epsilon(self, social_graph, social_weights):
        with pytest.raises(ValueError):
            gd_bisect(social_graph, social_weights, 0.0, _config())

    def test_invalid_target_fraction(self, social_graph, social_weights):
        with pytest.raises(ValueError):
            gd_bisect(social_graph, social_weights, 0.05, _config(), target_fraction=1.0)

    def test_elapsed_time_recorded(self, social_graph, social_weights):
        result = gd_bisect(social_graph, social_weights, 0.05, _config(iterations=5))
        assert result.elapsed_seconds > 0


class TestTargetFraction:
    def test_asymmetric_split(self, social_graph, social_weights):
        result = gd_bisect(social_graph, social_weights, 0.05, _config(),
                           target_fraction=0.75)
        sizes = result.partition.part_sizes()
        fraction = sizes[0] / sizes.sum()
        assert 0.65 < fraction < 0.85


class TestHistory:
    def test_history_recorded_when_enabled(self, social_graph, social_weights):
        result = gd_bisect(social_graph, social_weights, 0.05,
                           _config(iterations=10, record_history=True))
        # One record per iteration plus the final rounded snapshot.
        assert len(result.history) == 11
        assert all(0.0 <= record.edge_locality_pct <= 100.0 for record in result.history)

    def test_history_empty_when_disabled(self, social_graph, social_weights):
        result = gd_bisect(social_graph, social_weights, 0.05,
                           _config(iterations=10, record_history=False))
        assert result.history == []

    def test_locality_improves_over_run(self, lj_graph):
        weights = standard_weights(lj_graph, 2)
        result = gd_bisect(lj_graph, weights, 0.05,
                           _config(iterations=60, record_history=True))
        early = result.history[0].edge_locality_pct
        late = result.history[-1].edge_locality_pct
        assert late > early


class TestConfigurations:
    @pytest.mark.parametrize("projection", ["exact", "alternating", "alternating_oneshot",
                                            "dykstra"])
    def test_all_projection_methods_balanced(self, social_graph, social_weights, projection):
        result = gd_bisect(social_graph, social_weights, 0.05,
                           _config(iterations=30, projection_method=projection))
        assert is_epsilon_balanced(result.partition, social_weights, epsilon=0.06)

    def test_vertex_fixing_freezes_vertices(self, social_graph, social_weights):
        with_fixing = gd_bisect(social_graph, social_weights, 0.05,
                                _config(iterations=40, vertex_fixing=True,
                                        record_history=True))
        assert with_fixing.history[-1].num_fixed > 0

    def test_without_vertex_fixing_none_frozen(self, social_graph, social_weights):
        result = gd_bisect(social_graph, social_weights, 0.05,
                           _config(iterations=20, vertex_fixing=False,
                                   record_history=True))
        assert result.history[-1].num_fixed == 0

    def test_noise_every_iteration_still_balanced(self, social_graph, social_weights):
        result = gd_bisect(social_graph, social_weights, 0.05,
                           _config(iterations=30, noise_every_iteration=True))
        assert is_epsilon_balanced(result.partition, social_weights, epsilon=0.06)

    def test_projection_epsilon_override(self, social_graph, social_weights):
        result = gd_bisect(social_graph, social_weights, 0.05,
                           _config(iterations=30, projection_method="exact",
                                   projection_epsilon=0.2))
        # The final result is still repaired to the requested epsilon.
        assert is_epsilon_balanced(result.partition, social_weights, epsilon=0.06)

    def test_nonadaptive_step(self, social_graph, social_weights):
        result = gd_bisect(social_graph, social_weights, 0.05,
                           _config(iterations=30, adaptive_step=False))
        assert result.partition.num_parts == 2


class TestGDPartitioner:
    def test_two_way(self, social_graph, social_weights):
        partitioner = GDPartitioner(epsilon=0.05, config=_config())
        partition = partitioner.partition(social_graph, social_weights, num_parts=2)
        assert partition.num_parts == 2

    def test_k_way_delegates_to_recursive(self, social_graph, social_weights):
        partitioner = GDPartitioner(epsilon=0.05, config=_config(iterations=30))
        partition = partitioner.partition(social_graph, social_weights, num_parts=4)
        assert partition.num_parts == 4
        assert max_imbalance(partition, social_weights) < 0.10

    def test_bisect_returns_result(self, social_graph, social_weights):
        partitioner = GDPartitioner(epsilon=0.05, config=_config(iterations=10))
        result = partitioner.bisect(social_graph, social_weights)
        assert result.epsilon == 0.05

    def test_name(self):
        assert GDPartitioner().name == "GD"
