"""Unit tests for the CSR graph representation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph


class TestConstruction:
    def test_from_edges_basic(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.num_vertices == 4
        assert graph.num_edges == 3

    def test_duplicate_edges_are_removed(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_self_loops_are_removed(self):
        graph = Graph.from_edges(3, [(0, 0), (1, 1), (0, 1)])
        assert graph.num_edges == 1

    def test_empty_graph(self):
        graph = Graph.from_edges(5, [])
        assert graph.num_vertices == 5
        assert graph.num_edges == 0
        assert graph.degrees.sum() == 0

    def test_zero_vertices(self):
        graph = Graph.from_edges(0, [])
        assert graph.num_vertices == 0
        assert len(graph) == 0

    def test_edges_canonical_order(self):
        graph = Graph.from_edges(4, [(3, 1), (2, 0)])
        for u, v in graph.iter_edges():
            assert u < v

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [(0, 3)])

    def test_negative_endpoint_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [(-1, 2)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(-1, [])

    def test_malformed_edge_array_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, np.array([[0, 1, 2]]))

    def test_from_numpy_array(self):
        edges = np.array([[0, 1], [1, 2]])
        graph = Graph.from_edges(3, edges)
        assert graph.num_edges == 2


class TestAccessors:
    def test_degrees(self, triangle_graph):
        assert np.array_equal(triangle_graph.degrees, [2, 2, 2])

    def test_degree_single_vertex(self, path_graph):
        assert path_graph.degree(0) == 1
        assert path_graph.degree(1) == 2

    def test_neighbors(self, triangle_graph):
        assert sorted(triangle_graph.neighbors(0).tolist()) == [1, 2]

    def test_neighbors_isolated_vertex(self):
        graph = Graph.from_edges(3, [(0, 1)])
        assert graph.neighbors(2).size == 0

    def test_iter_edges_count(self, clique_ring):
        assert len(list(clique_ring.iter_edges())) == clique_ring.num_edges

    def test_len_is_vertex_count(self, path_graph):
        assert len(path_graph) == 6

    def test_star_degrees(self, small_star):
        degrees = small_star.degrees
        assert degrees[0] == 12
        assert np.all(degrees[1:] == 1)


class TestAdjacencyMatrix:
    def test_is_symmetric(self, social_graph):
        adjacency = social_graph.adjacency_matrix()
        assert (adjacency != adjacency.T).nnz == 0

    def test_row_sums_equal_degrees(self, social_graph):
        adjacency = social_graph.adjacency_matrix()
        row_sums = np.asarray(adjacency.sum(axis=1)).ravel()
        assert np.allclose(row_sums, social_graph.degrees)

    def test_zero_diagonal(self, triangle_graph):
        adjacency = triangle_graph.adjacency_matrix()
        assert adjacency.diagonal().sum() == 0

    def test_nnz_is_twice_edge_count(self, clique_ring):
        adjacency = clique_ring.adjacency_matrix()
        assert adjacency.nnz == 2 * clique_ring.num_edges


class TestSubgraph:
    def test_induced_subgraph_of_clique(self, two_cliques_graph):
        subgraph, mapping = two_cliques_graph.subgraph([0, 1, 2, 3, 4])
        assert subgraph.num_vertices == 5
        assert subgraph.num_edges == 10  # complete graph on 5 vertices
        assert np.array_equal(mapping, [0, 1, 2, 3, 4])

    def test_subgraph_drops_external_edges(self, path_graph):
        subgraph, _ = path_graph.subgraph([0, 1, 3, 4])
        # edges (0,1) and (3,4) survive; (1,2), (2,3), (4,5) are dropped
        assert subgraph.num_edges == 2

    def test_subgraph_mapping_is_sorted_unique(self, path_graph):
        _, mapping = path_graph.subgraph([4, 1, 1, 3])
        assert np.array_equal(mapping, [1, 3, 4])

    def test_subgraph_empty_selection(self, path_graph):
        subgraph, mapping = path_graph.subgraph([])
        assert subgraph.num_vertices == 0
        assert mapping.size == 0

    def test_subgraph_out_of_range_rejected(self, path_graph):
        with pytest.raises(ValueError):
            path_graph.subgraph([0, 99])


class TestNetworkxInterop:
    def test_roundtrip_preserves_structure(self, social_graph):
        nx_graph = social_graph.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back.num_vertices == social_graph.num_vertices
        assert back.num_edges == social_graph.num_edges
        assert np.array_equal(back.edges, social_graph.edges)

    def test_to_networkx_counts(self, clique_ring):
        nx_graph = clique_ring.to_networkx()
        assert nx_graph.number_of_nodes() == clique_ring.num_vertices
        assert nx_graph.number_of_edges() == clique_ring.num_edges

    def test_from_networkx_relabels_nodes(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_edges_from([(10, 20), (20, 30)])
        graph = Graph.from_networkx(nx_graph)
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
