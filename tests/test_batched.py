"""Tests of the batched frontier solver and its supporting layers.

The backend-level contract — ``parallelism="batched"`` bit-identical to
serial through ``recursive_bisection`` — lives in ``test_executor.py``;
this module exercises the pieces: the block-diagonal graph stacking, the
one-pass wave extraction, the stacked noise/step state, the batched
projection engine, and the solver's early-drop-out behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.core import (
    BatchedFrontierSolver,
    BatchedNoiseSchedule,
    BatchedProjectionEngine,
    BatchedStepSizeController,
    FrontierTask,
    GDConfig,
    NoiseSchedule,
    StepSizeController,
    gd_bisect,
    task_seed,
)
from repro.core.projection import FeasibleRegion, ProjectionEngine
from repro.graphs import Graph, power_law_cluster_graph, standard_weights


def _frontier_tasks(graph, weights, num_chunks, iterations=10, **config_overrides):
    """Split ``graph`` into contiguous chunks, one bisection task each."""
    chunks = np.array_split(np.arange(graph.num_vertices), num_chunks)
    tasks = []
    for index, ids in enumerate(chunks):
        subgraph, mapping = graph.subgraph(ids)
        config = GDConfig(iterations=iterations, seed=task_seed(0, 1, index),
                          **config_overrides)
        tasks.append(FrontierTask(subgraph=subgraph, weights=weights[:, mapping],
                                  epsilon=0.05, config=config))
    return tasks


def _serial_assignments(tasks):
    return [gd_bisect(task.subgraph, task.weights, task.epsilon, task.config,
                      task.target_fraction).partition.assignment
            for task in tasks]


# --------------------------------------------------------------------- #
# Graph.block_diagonal
# --------------------------------------------------------------------- #
class TestBlockDiagonal:
    def test_matches_scipy_block_diag(self, social_graph, small_grid, small_star):
        graphs = [social_graph, small_grid, small_star]
        stacked, offsets = Graph.block_diagonal(graphs)
        expected = sparse.block_diag(
            [g.adjacency_matrix() for g in graphs], format="csr")
        assert (stacked.adjacency_matrix() != expected).nnz == 0
        assert offsets.tolist() == [0, social_graph.num_vertices,
                                    social_graph.num_vertices + small_grid.num_vertices,
                                    stacked.num_vertices]

    def test_matvec_reproduces_per_block_products_bitwise(self, social_graph, small_grid):
        graphs = [social_graph, small_grid]
        stacked, offsets = Graph.block_diagonal(graphs)
        rng = np.random.default_rng(5)
        x = rng.normal(size=stacked.num_vertices)
        product = stacked.adjacency_matrix() @ x
        for graph, start, stop in zip(graphs, offsets[:-1], offsets[1:]):
            block = graph.adjacency_matrix() @ x[start:stop]
            np.testing.assert_array_equal(product[start:stop], block)

    def test_handles_empty_and_edgeless_blocks(self):
        lonely = Graph.from_edges(3, [])
        pair = Graph.from_edges(2, [(0, 1)])
        stacked, offsets = Graph.block_diagonal([lonely, pair])
        assert stacked.num_vertices == 5
        assert stacked.num_edges == 1
        assert stacked.edges.tolist() == [[3, 4]]
        assert offsets.tolist() == [0, 3, 5]

    def test_requires_at_least_one_graph(self):
        with pytest.raises(ValueError, match="at least one graph"):
            Graph.block_diagonal([])


# --------------------------------------------------------------------- #
# Graph.subgraphs (one-pass wave extraction)
# --------------------------------------------------------------------- #
class TestSubgraphs:
    def test_matches_per_set_subgraph_calls(self, social_graph):
        rng = np.random.default_rng(3)
        order = rng.permutation(social_graph.num_vertices)
        sets = [order[:100], order[100:130], order[200:260]]
        batched = social_graph.subgraphs(sets)
        for ids, (subgraph, mapping) in zip(sets, batched):
            expected_graph, expected_mapping = social_graph.subgraph(ids)
            assert np.array_equal(mapping, expected_mapping)
            assert subgraph.num_vertices == expected_graph.num_vertices
            assert np.array_equal(subgraph.edges, expected_graph.edges)
            assert np.array_equal(subgraph.indptr, expected_graph.indptr)
            assert np.array_equal(subgraph.indices, expected_graph.indices)

    def test_empty_wave_and_empty_sets(self, small_grid):
        assert small_grid.subgraphs([]) == []
        (subgraph, mapping), = small_grid.subgraphs([np.array([], dtype=np.int64)])
        assert subgraph.num_vertices == 0
        assert mapping.size == 0

    def test_rejects_overlapping_sets(self, small_grid):
        with pytest.raises(ValueError, match="disjoint"):
            small_grid.subgraphs([[0, 1, 2], [2, 3]])

    def test_rejects_out_of_range_ids(self, small_grid):
        with pytest.raises(ValueError, match="out of range"):
            small_grid.subgraphs([[0, small_grid.num_vertices]])


# --------------------------------------------------------------------- #
# Stacked noise / step state
# --------------------------------------------------------------------- #
class TestBatchedNoise:
    def test_stacked_samples_equal_per_block_samples(self):
        seeds = [7, 8, 9]
        sizes = [5, 3, 4]
        schedules = [NoiseSchedule(n, rng=np.random.default_rng(seed))
                     for n, seed in zip(sizes, seeds)]
        batched = BatchedNoiseSchedule(schedules)
        stacked = batched.sample_stacked(0)
        reference = np.concatenate([
            NoiseSchedule(n, rng=np.random.default_rng(seed)).sample(0)
            for n, seed in zip(sizes, seeds)])
        np.testing.assert_array_equal(stacked, reference)
        # Quiet iterations share one zero vector of the stacked length.
        assert batched.sample_stacked(1).shape == (sum(sizes),)
        assert not batched.sample_stacked(1).any()

    def test_consume_advances_streams_like_a_serial_run(self):
        rng_a = np.random.default_rng(1)
        schedule = NoiseSchedule(4, every_iteration=True, rng=rng_a)
        batched = BatchedNoiseSchedule([schedule])
        batched.sample_stacked(0)
        batched.consume(1, 5)

        rng_b = np.random.default_rng(1)
        serial = NoiseSchedule(4, every_iteration=True, rng=rng_b)
        for iteration in range(5):
            serial.sample(iteration)
        np.testing.assert_array_equal(rng_a.random(8), rng_b.random(8))

    def test_mixed_every_iteration_flags_rejected(self):
        with pytest.raises(ValueError, match="every_iteration"):
            BatchedNoiseSchedule([NoiseSchedule(2, every_iteration=True),
                                  NoiseSchedule(2, every_iteration=False)])


class TestBatchedStepSizes:
    def test_matches_scalar_controllers_bitwise(self):
        rng = np.random.default_rng(0)
        targets = np.array([0.5, 1.25, 2.0])
        scalars = [StepSizeController(t) for t in targets]
        batched = BatchedStepSizeController(targets)

        norms = np.array([3.0, 0.0, 7.5])
        gammas = batched.step_sizes(norms)
        for controller, norm, gamma in zip(scalars, norms, gammas):
            gradient = np.array([norm])  # norm of a 1-vector is its value
            assert controller.step_size(gradient) == gamma

        for _ in range(6):
            realized = np.abs(rng.normal(size=3)) * np.array([1.0, 1.0, 0.0])
            batched.update(realized)
            for controller, value in zip(scalars, realized):
                controller.update(float(value))
            for controller, gamma in zip(scalars, batched.step_sizes()):
                assert controller.step_size(np.array([1.0])) == gamma

    def test_inactive_blocks_keep_their_gamma(self):
        batched = BatchedStepSizeController(np.array([1.0, 1.0]))
        batched.step_sizes(np.array([2.0, 2.0]))
        before = batched.step_sizes().copy()
        batched.update(np.array([0.25, 0.25]), active=np.array([True, False]))
        after = batched.step_sizes()
        assert after[0] != before[0]
        assert after[1] == before[1]

    def test_first_call_requires_norms(self):
        controller = BatchedStepSizeController(np.array([1.0]))
        with pytest.raises(ValueError, match="norms"):
            controller.step_sizes()


# --------------------------------------------------------------------- #
# Batched projection engine
# --------------------------------------------------------------------- #
class TestBatchedProjectionEngine:
    def _regions(self, rng, sizes, d=2):
        regions = []
        for n in sizes:
            weights = rng.uniform(0.5, 2.0, size=(d, n))
            regions.append(FeasibleRegion.balanced(weights, 0.05))
        return regions

    def test_oneshot_sweep_matches_per_block_engines(self):
        rng = np.random.default_rng(11)
        sizes = [40, 25, 33]
        regions = self._regions(rng, sizes)
        batched = BatchedProjectionEngine("alternating_oneshot", regions)
        offsets = batched.offsets
        total = int(offsets[-1])

        x = np.zeros(total)
        fixed = np.zeros(total, dtype=bool)
        active = np.ones(len(sizes), dtype=bool)
        y = rng.normal(size=total) * 2.0

        result = batched.project_frontier(y, x, fixed, active)
        for block, region in enumerate(regions):
            segment = slice(offsets[block], offsets[block + 1])
            engine = ProjectionEngine("alternating_oneshot", region)
            np.testing.assert_array_equal(result[segment], engine.project(y[segment]))
        assert batched.vectorized_projections == len(sizes)
        assert batched.engine_projections == 0

    def test_oneshot_sweep_matches_restricted_engines(self):
        rng = np.random.default_rng(12)
        sizes = [30, 22]
        regions = self._regions(rng, sizes)
        batched = BatchedProjectionEngine("alternating_oneshot", regions)
        offsets = batched.offsets
        total = int(offsets[-1])

        fixed = rng.random(total) < 0.3
        x = np.where(fixed, np.where(rng.random(total) < 0.5, 1.0, -1.0), 0.1)
        active = np.ones(len(sizes), dtype=bool)
        y = rng.normal(size=total)

        result = batched.project_frontier(y, x, fixed, active)
        for block, region in enumerate(regions):
            segment = slice(offsets[block], offsets[block + 1])
            free = ~fixed[segment]
            engine = ProjectionEngine("alternating_oneshot", region)
            expected = x[segment].copy()
            expected[free] = engine.project_restricted(
                y[segment][free], free, x[segment][~free])
            np.testing.assert_array_equal(result[segment], expected)

    def test_non_oneshot_methods_route_through_engines(self):
        rng = np.random.default_rng(13)
        regions = self._regions(rng, [20, 20], d=1)
        batched = BatchedProjectionEngine("exact", regions)
        offsets = batched.offsets
        total = int(offsets[-1])
        x = np.zeros(total)
        fixed = np.zeros(total, dtype=bool)
        y = rng.normal(size=total)

        result = batched.project_frontier(y, x, fixed, np.ones(2, dtype=bool))
        for block, region in enumerate(regions):
            segment = slice(offsets[block], offsets[block + 1])
            engine = ProjectionEngine("exact", region)
            np.testing.assert_array_equal(result[segment], engine.project(y[segment]))
        assert batched.engine_projections == 2
        assert batched.vectorized_projections == 0

    def test_zero_norm_dimension_matches_serial_no_op(self):
        """A dimension whose weight row is all zeros has no hyperplane; the
        serial kernel leaves the point untouched and the batched sweep must
        mirror that instead of dividing by the zero norm."""
        rng = np.random.default_rng(15)
        regions = []
        for n in (12, 9):
            weights = np.vstack([rng.uniform(0.5, 2.0, size=n), np.zeros(n)])
            regions.append(FeasibleRegion(weights=weights,
                                          lower=np.array([-1.0, 0.0]),
                                          upper=np.array([1.0, 0.0])))
        batched = BatchedProjectionEngine("alternating_oneshot", regions)
        total = int(batched.offsets[-1])
        x = np.zeros(total)
        fixed = np.zeros(total, dtype=bool)
        y = rng.normal(size=total)

        result = batched.project_frontier(y, x, fixed, np.ones(2, dtype=bool))
        assert np.isfinite(result).all()
        for block, region in enumerate(regions):
            segment = slice(batched.offsets[block], batched.offsets[block + 1])
            engine = ProjectionEngine("alternating_oneshot", region)
            np.testing.assert_array_equal(result[segment], engine.project(y[segment]))

    def test_inactive_blocks_keep_their_iterate(self):
        rng = np.random.default_rng(14)
        regions = self._regions(rng, [15, 15])
        batched = BatchedProjectionEngine("alternating_oneshot", regions)
        total = int(batched.offsets[-1])
        # Block 1 fully fixed: its segment must come back untouched.
        fixed = np.zeros(total, dtype=bool)
        fixed[15:] = True
        x = np.where(fixed, 1.0, 0.2)
        y = rng.normal(size=total)
        active = np.array([True, False])

        result = batched.project_frontier(y, x, fixed, active)
        np.testing.assert_array_equal(result[15:], x[15:])


# --------------------------------------------------------------------- #
# BatchedFrontierSolver
# --------------------------------------------------------------------- #
class TestBatchedFrontierSolver:
    @pytest.mark.parametrize("projection",
                             ["alternating_oneshot", "alternating", "exact", "dykstra"])
    def test_matches_serial_for_every_projection_method(self, social_graph,
                                                        social_weights, projection):
        tasks = _frontier_tasks(social_graph, social_weights, 4,
                                projection_method=projection)
        batched = BatchedFrontierSolver(tasks).solve()
        for expected, actual in zip(_serial_assignments(tasks), batched):
            np.testing.assert_array_equal(expected, actual)

    def test_uneven_target_fractions_match_serial(self, social_graph, social_weights):
        chunks = np.array_split(np.arange(social_graph.num_vertices), 3)
        tasks = []
        for index, (ids, fraction) in enumerate(zip(chunks, (0.5, 2.0 / 3.0, 0.6))):
            subgraph, mapping = social_graph.subgraph(ids)
            tasks.append(FrontierTask(
                subgraph=subgraph, weights=social_weights[:, mapping], epsilon=0.05,
                config=GDConfig(iterations=10, seed=task_seed(5, 2, index)),
                target_fraction=fraction))
        batched = BatchedFrontierSolver(tasks).solve()
        for expected, actual in zip(_serial_assignments(tasks), batched):
            np.testing.assert_array_equal(expected, actual)

    def test_empty_subgraphs_yield_empty_assignments(self, social_graph, social_weights):
        tasks = _frontier_tasks(social_graph, social_weights, 2)
        empty_graph = Graph.from_edges(0, [])
        empty = FrontierTask(subgraph=empty_graph,
                             weights=np.empty((2, 0)), epsilon=0.05,
                             config=tasks[0].config)
        results = BatchedFrontierSolver([tasks[0], empty, tasks[1]]).solve()
        assert results[1].size == 0
        for expected, actual in zip(_serial_assignments(tasks), [results[0], results[2]]):
            np.testing.assert_array_equal(expected, actual)

    def test_early_convergence_drops_blocks_and_matches_serial(self, social_graph,
                                                               social_weights):
        # Aggressive fixing (any |x| >= 0.2 freezes) makes whole
        # subproblems converge well before the iteration budget; the batch
        # must drop them, stop early, and still agree with serial — which
        # grinds through all 60 iterations on frozen iterates.
        tasks = _frontier_tasks(social_graph, social_weights, 4, iterations=60,
                                fixing_threshold=0.2, fixing_start_fraction=0.0)
        solver = BatchedFrontierSolver(tasks)
        batched = solver.solve()
        for expected, actual in zip(_serial_assignments(tasks), batched):
            np.testing.assert_array_equal(expected, actual)
        if tasks[0].config.kernel_backend == "numpy":
            assert solver.stats.dropped_early == len(tasks)
            assert solver.stats.iterations_run < 60
        else:
            # Non-reference kernel backends solo-route every task (the
            # stacked loop is numpy-only), so nothing runs in lock-step.
            assert solver.stats.solo_tasks == len(tasks)

    def test_rejects_mismatched_configs(self, social_graph, social_weights):
        tasks = _frontier_tasks(social_graph, social_weights, 2)
        broken = [tasks[0],
                  FrontierTask(subgraph=tasks[1].subgraph, weights=tasks[1].weights,
                               epsilon=0.05,
                               config=tasks[1].config.with_updates(iterations=99))]
        with pytest.raises(ValueError, match="share one GDConfig"):
            BatchedFrontierSolver(broken)

    def test_rejects_history_recording(self, social_graph, social_weights):
        tasks = _frontier_tasks(social_graph, social_weights, 2,
                                record_history=True)
        with pytest.raises(ValueError, match="history"):
            BatchedFrontierSolver(tasks)

    def test_rejects_empty_frontier(self):
        with pytest.raises(ValueError, match="at least one"):
            BatchedFrontierSolver([])

    def test_noise_every_iteration_matches_serial(self, social_graph, social_weights):
        tasks = _frontier_tasks(social_graph, social_weights, 3,
                                noise_every_iteration=True)
        batched = BatchedFrontierSolver(tasks).solve()
        for expected, actual in zip(_serial_assignments(tasks), batched):
            np.testing.assert_array_equal(expected, actual)

    def test_single_block_frontier_matches_serial(self):
        graph = power_law_cluster_graph(num_vertices=120, num_communities=3,
                                        average_degree=8.0, seed=2)
        weights = standard_weights(graph, 2)
        task = FrontierTask(subgraph=graph, weights=weights, epsilon=0.05,
                            config=GDConfig(iterations=12, seed=17))
        batched, = BatchedFrontierSolver([task]).solve()
        serial = gd_bisect(graph, weights, 0.05, task.config).partition.assignment
        np.testing.assert_array_equal(serial, batched)
