"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    chung_lu_graph,
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    planted_partition_graph,
    power_law_cluster_graph,
    random_regular_graph,
    ring_of_cliques,
    star_graph,
)


class TestChungLu:
    def test_vertex_count(self):
        graph = chung_lu_graph(200, average_degree=8.0, seed=0)
        assert graph.num_vertices == 200

    def test_average_degree_in_range(self):
        graph = chung_lu_graph(500, average_degree=10.0, seed=1)
        assert 4.0 < graph.degrees.mean() < 14.0

    def test_deterministic_with_seed(self):
        a = chung_lu_graph(100, average_degree=6.0, seed=42)
        b = chung_lu_graph(100, average_degree=6.0, seed=42)
        assert np.array_equal(a.edges, b.edges)

    def test_different_seeds_differ(self):
        a = chung_lu_graph(100, average_degree=6.0, seed=1)
        b = chung_lu_graph(100, average_degree=6.0, seed=2)
        assert not np.array_equal(a.edges, b.edges)

    def test_skewed_degrees(self):
        graph = chung_lu_graph(2000, average_degree=10.0, exponent=2.1, seed=3)
        degrees = graph.degrees
        assert degrees.max() > 4 * degrees.mean()

    def test_invalid_vertex_count(self):
        with pytest.raises(ValueError):
            chung_lu_graph(0, average_degree=5.0)


class TestPlantedPartition:
    def test_sizes(self):
        graph = planted_partition_graph(300, 3, intra_degree=10.0, inter_degree=2.0, seed=0)
        assert graph.num_vertices == 300

    def test_community_structure_visible(self):
        graph = planted_partition_graph(300, 2, intra_degree=12.0, inter_degree=1.0, seed=1)
        # With strong communities most edges should be short-range in the
        # community id space; just check the graph is reasonably dense.
        assert graph.degrees.mean() > 6.0

    def test_invalid_communities(self):
        with pytest.raises(ValueError):
            planted_partition_graph(100, 0, 5.0, 1.0)


class TestPowerLawCluster:
    def test_deterministic(self):
        a = power_law_cluster_graph(200, 4, 8.0, seed=5)
        b = power_law_cluster_graph(200, 4, 8.0, seed=5)
        assert np.array_equal(a.edges, b.edges)

    def test_mixing_bounds(self):
        with pytest.raises(ValueError):
            power_law_cluster_graph(100, 4, 8.0, mixing=1.5)

    def test_correlation_bounds(self):
        with pytest.raises(ValueError):
            power_law_cluster_graph(100, 4, 8.0, degree_community_correlation=2.0)

    def test_reasonable_density(self):
        graph = power_law_cluster_graph(1000, 10, 20.0, seed=2)
        assert 8.0 < graph.degrees.mean() < 28.0

    def test_hubs_exist(self):
        graph = power_law_cluster_graph(2000, 10, 20.0, exponent=2.1, seed=2)
        assert graph.degrees.max() > 5 * graph.degrees.mean()


class TestStructuredGenerators:
    def test_ring_of_cliques_counts(self):
        graph = ring_of_cliques(4, 5)
        assert graph.num_vertices == 20
        # 4 cliques of C(5,2)=10 edges plus 4 ring edges
        assert graph.num_edges == 44

    def test_single_clique_ring(self):
        graph = ring_of_cliques(1, 4)
        assert graph.num_edges == 6

    def test_ring_of_cliques_invalid(self):
        with pytest.raises(ValueError):
            ring_of_cliques(0, 5)

    def test_star(self):
        graph = star_graph(7)
        assert graph.num_vertices == 8
        assert graph.num_edges == 7

    def test_grid_counts(self):
        graph = grid_graph(3, 4)
        assert graph.num_vertices == 12
        assert graph.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_complete_graph(self):
        graph = complete_graph(6)
        assert graph.num_edges == 15
        assert np.all(graph.degrees == 5)

    def test_random_regular_degree(self):
        graph = random_regular_graph(100, 4, seed=0)
        # Configuration model: degrees are close to the target after
        # removing duplicates / self loops.
        assert 3.0 <= graph.degrees.mean() <= 4.0

    def test_random_regular_invalid_degree(self):
        with pytest.raises(ValueError):
            random_regular_graph(10, 10)

    def test_erdos_renyi_probability_bounds(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)

    def test_erdos_renyi_density(self):
        graph = erdos_renyi_graph(60, 0.2, seed=0)
        expected = 0.2 * 60 * 59 / 2
        assert 0.5 * expected < graph.num_edges < 1.5 * expected
