"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    grid_graph,
    livejournal_like,
    power_law_cluster_graph,
    ring_of_cliques,
    standard_weights,
    star_graph,
)


@pytest.fixture
def triangle_graph() -> Graph:
    """A triangle: the smallest graph with a non-trivial cut."""
    return Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path_graph() -> Graph:
    """A 6-vertex path."""
    return Graph.from_edges(6, [(i, i + 1) for i in range(5)])


@pytest.fixture
def two_cliques_graph() -> Graph:
    """Two 5-cliques joined by a single bridge edge (known optimal bisection)."""
    edges = []
    for base in (0, 5):
        for i in range(5):
            for j in range(i + 1, 5):
                edges.append((base + i, base + j))
    edges.append((0, 5))
    return Graph.from_edges(10, edges)


@pytest.fixture
def clique_ring() -> Graph:
    """Eight 8-cliques in a ring — a standard partitioning benchmark."""
    return ring_of_cliques(8, 8)


@pytest.fixture
def small_grid() -> Graph:
    return grid_graph(6, 6)


@pytest.fixture
def small_star() -> Graph:
    return star_graph(12)


@pytest.fixture
def social_graph() -> Graph:
    """A small power-law community graph (deterministic)."""
    return power_law_cluster_graph(
        num_vertices=300, num_communities=6, average_degree=12.0, seed=7)


@pytest.fixture
def lj_graph() -> Graph:
    """A small LiveJournal-like preset used by integration tests."""
    return livejournal_like(scale=0.25, seed=3)


@pytest.fixture
def social_weights(social_graph) -> np.ndarray:
    return standard_weights(social_graph, 2)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
