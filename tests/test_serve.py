"""Tests for the partition-serving service.

pytest-asyncio is not a hard dependency of the suite: every test drives
its coroutine through ``asyncio.run`` inside a plain sync test, which
also mirrors how the CLI entry points invoke the service.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import GDConfig, recursive_bisection
from repro.faults import FaultPlan, FaultSpec, inject
from repro.graphs import power_law_cluster_graph, standard_weights
from repro.serve import (
    PartitionServer,
    PartitionService,
    ServeConfig,
    ServeError,
    ServiceClient,
    drive,
)
from repro.serve.load import zipf_ids

NUM_PARTS = 4
CONFIG = GDConfig(iterations=15, seed=0)


@pytest.fixture(scope="module")
def serving_state():
    graph = power_law_cluster_graph(300, 6, 10.0, seed=3)
    weights = standard_weights(graph, 2)
    partition = recursive_bisection(graph, weights, NUM_PARTS, 0.05, CONFIG)
    return graph, weights, partition.assignment


def make_service(serving_state, **overrides) -> PartitionService:
    graph, weights, assignment = serving_state
    serve_config = ServeConfig(port=0, **overrides)
    return PartitionService(graph, weights, assignment.copy(), NUM_PARTS,
                            config=CONFIG, serve_config=serve_config)


class TestLookups:
    def test_lookup_matches_assignment(self, serving_state):
        service = make_service(serving_state)
        _, _, assignment = serving_state
        parts, version = service.lookup([0, 5, 299])
        assert version == 0
        np.testing.assert_array_equal(parts, assignment[[0, 5, 299]])

    def test_lookup_rejects_out_of_range(self, serving_state):
        service = make_service(serving_state)
        with pytest.raises(ValueError, match="out of range"):
            service.lookup([300])
        with pytest.raises(ValueError, match="out of range"):
            service.lookup([-1])

    def test_lookup_rejects_oversized_batches(self, serving_state):
        service = make_service(serving_state, lookup_chunk=4)
        with pytest.raises(ValueError, match="per-request limit"):
            service.lookup([0, 1, 2, 3, 4])

    def test_route_and_fanout(self, serving_state):
        service = make_service(serving_state)
        _, _, assignment = serving_state
        route = service.route(0, 1)
        assert route["parts"] == [int(assignment[0]), int(assignment[1])]
        assert route["local"] == (assignment[0] == assignment[1])
        fanout = service.fanout(range(300))
        assert fanout["fanout"] == NUM_PARTS
        assert sum(fanout["parts"].values()) == 300


class TestRepairSwap:
    def test_lookups_stay_consistent_during_inflight_repair(self,
                                                            serving_state):
        """While a repair is running, every lookup batch must agree with
        the *complete* assignment of the version it reports — the old one
        or the repaired one, never a torn mix."""

        async def scenario():
            service = make_service(serving_state)
            await service.start()
            try:
                by_version = {0: service.lookup(range(300))[0].copy()}
                await service.ingest_churn(0.05, seed=11)
                ids = np.arange(0, 300, 7)
                observed = []
                # Hammer lookups until the swap lands (bounded by the
                # queue join below, which waits for the repair).
                while service.version == 0:
                    observed.append(service.lookup(ids))
                    await asyncio.sleep(0)
                await service._queue.join()
                by_version[service.version] = service.lookup(range(300))[0]
                observed.append(service.lookup(ids))
                for parts, version in observed:
                    np.testing.assert_array_equal(parts,
                                                  by_version[version][ids])
                assert service.version >= 1
                assert service.repair_lag == 0
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_swap_publishes_repartitioner_assignment(self, serving_state):
        async def scenario():
            service = make_service(serving_state)
            await service.start()
            try:
                await service.ingest_churn(0.03, seed=5)
                await service._queue.join()
                parts, version = service.lookup(range(300))
                assert version == 1
                np.testing.assert_array_equal(
                    parts, service._repartitioner.assignment)
                stats = service.stats()
                assert stats["batches_applied"] == 1
                assert stats["modes"]
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_failed_batch_leaves_assignment_untouched(self, serving_state):
        """A conflicting update (deleting a non-edge) fails in the worker:
        counted, logged, and the served assignment keeps its version."""
        from repro.dynamic import UpdateBatch

        async def scenario():
            service = make_service(serving_state)
            await service.start()
            try:
                u, v = 0, 1
                while service._dynamic.has_edge(u, v):
                    v += 1
                bad = UpdateBatch(deletions=np.array([[u, v]]))
                await service.ingest(bad)
                await service._queue.join()
                stats = service.stats()
                assert stats["batches_failed"] == 1
                assert stats["version"] == 0
                assert service.repair_lag == 0
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_backpressure_rejects_when_queue_full(self, serving_state):
        async def scenario():
            service = make_service(serving_state, max_queue=1)
            # Queue exists but no worker is draining it: the second
            # ingest must bounce.
            service._queue = asyncio.Queue()
            await service.ingest_churn(0.01)
            with pytest.raises(RuntimeError, match="queue full"):
                await service.ingest_churn(0.01)

        asyncio.run(scenario())

    def test_graceful_stop_drains_pending_batches(self, serving_state):
        async def scenario():
            service = make_service(serving_state)
            await service.start()
            for seed in range(3):
                await service.ingest_churn(0.02, seed=seed)
            await service.stop()
            stats = service.stats()
            assert stats["batches_applied"] == 3
            assert stats["queue_depth"] == 0
            assert service.version == 3
            # Ingest after shutdown is refused.
            with pytest.raises(RuntimeError, match="not started|shutting"):
                await service.ingest_churn(0.02)

        asyncio.run(scenario())


class TestTcpServer:
    def test_full_protocol_round_trip(self, serving_state):
        _, _, assignment = serving_state

        async def scenario():
            service = make_service(serving_state)
            server = PartitionServer(service)
            await server.start()
            try:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    assert (await client.call("ping"))["ok"]
                    response = await client.call("lookup", ids=[0, 1, 2])
                    assert response["parts"] == assignment[:3].tolist()
                    assert response["version"] == 0
                    response = await client.call("route", u=0, v=1)
                    assert len(response["parts"]) == 2
                    response = await client.call("fanout", ids=list(range(50)))
                    assert sum(response["parts"].values()) == 50
                    stats = (await client.call("stats"))["stats"]
                    assert stats["num_vertices"] == 300
                    # Errors answer in-band and keep the connection open.
                    bad = await client.request({"op": "lookup", "ids": [999]})
                    assert not bad["ok"] and "out of range" in bad["error"]
                    bad = await client.request({"op": "frobnicate"})
                    assert not bad["ok"] and "unknown op" in bad["error"]
                    assert (await client.call("ping"))["ok"]
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_churn_over_tcp_bumps_version(self, serving_state):
        async def scenario():
            service = make_service(serving_state)
            server = PartitionServer(service)
            await server.start()
            try:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    response = await client.call("churn", fraction=0.03,
                                                 seed=2)
                    assert response["queued"] >= 0
                    await service._queue.join()
                    stats = (await client.call("stats"))["stats"]
                    assert stats["version"] == 1
                    assert stats["repair_lag"] == 0
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_shutdown_op_stops_the_server(self, serving_state):
        async def scenario():
            service = make_service(serving_state)
            server = PartitionServer(service)
            runner = asyncio.ensure_future(server.run_until_stopped())
            # Wait for the listener to come up, then ask it to stop.
            for _ in range(100):
                if server._server is not None:
                    break
                await asyncio.sleep(0.01)
            async with ServiceClient("127.0.0.1", server.port) as client:
                assert (await client.call("shutdown"))["ok"]
            await asyncio.wait_for(runner, timeout=10)

        asyncio.run(scenario())

    def test_load_driver_reports_throughput_and_lag(self, serving_state):
        async def scenario():
            service = make_service(serving_state)
            server = PartitionServer(service)
            await server.start()
            try:
                report = await drive("127.0.0.1", server.port,
                                     num_lookups=2000, batch_size=100,
                                     churn_batches=1, churn_fraction=0.02,
                                     seed=3)
            finally:
                await server.stop()
            assert report.lookups == 2000
            assert report.batches == 20
            assert report.lookups_per_sec > 0
            assert report.p99_ms >= report.p50_ms
            assert report.churn_batches == 1
            # After a full drain-on-stop the batch must have been applied.
            assert service.stats()["batches_applied"] == 1
            payload = report.as_dict()
            assert {"lookups_per_sec", "p50_ms", "p99_ms",
                    "repair_lag_batches"} <= payload.keys()

        asyncio.run(scenario())


class TestZipfSampling:
    def test_skewed_sampling_is_deterministic_and_skewed(self):
        a = zipf_ids(1000, 5000, skew=1.2, seed=7)
        b = zipf_ids(1000, 5000, skew=1.2, seed=7)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0 and a.max() < 1000
        # Zipf 1.2 concentrates: the hottest vertex dominates a uniform
        # draw's expectation (5 hits) by a wide margin.
        hottest = np.bincount(a).max()
        assert hottest > 50

    def test_zero_skew_is_roughly_uniform(self):
        ids = zipf_ids(50, 20000, skew=0.0, seed=1)
        counts = np.bincount(ids, minlength=50)
        assert counts.min() > 200

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(port=-1)
        with pytest.raises(ValueError):
            ServeConfig(max_queue=0)
        with pytest.raises(ValueError):
            ServeConfig(epsilon=0.0)
        assert ServeConfig().with_updates(port=0).port == 0

    def test_resilience_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(client_timeout_seconds=0.0)
        with pytest.raises(ValueError):
            ServeConfig(restart_backoff_seconds=0.0)
        with pytest.raises(ValueError):
            ServeConfig(restart_backoff_seconds=2.0,
                        restart_backoff_max_seconds=1.0)
        with pytest.raises(ValueError):
            ServeConfig(max_worker_restarts=-1)
        with pytest.raises(ValueError):
            ServeConfig(escalation_threshold=0)
        with pytest.raises(ValueError):
            ServeConfig(degraded_lag_batches=0)
        assert ServeConfig(client_timeout_seconds=None).client_timeout_seconds is None


class TestSelfHealing:
    """Supervisor restarts, circuit breaker, health verb, client resilience."""

    def test_health_verb_over_tcp(self, serving_state):
        async def scenario():
            service = make_service(serving_state)
            server = PartitionServer(service)
            await server.start()
            try:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    health = (await client.call("health"))["health"]
                    assert health["status"] == "ok"
                    assert health["worker_alive"] is True
                    assert health["versions_behind"] == 0
                    assert health["seconds_since_last_repair"] is None
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_supervisor_restarts_crashed_worker_without_losing_churn(
            self, serving_state):
        """The worker crashes while holding a batch; the restarted worker
        re-processes that same batch — no churn lost, recovery counted."""
        plan = FaultPlan(faults=(FaultSpec(site="serve.repair", at=0,
                                           message="worker crash"),))

        async def scenario():
            service = make_service(serving_state,
                                   restart_backoff_seconds=0.02,
                                   restart_backoff_max_seconds=0.1)
            with inject(plan):
                await service.start()
                try:
                    await service.ingest_churn(0.02, seed=1)
                    await service._queue.join()
                finally:
                    await service.stop()
            stats = service.stats()
            assert stats["batches_applied"] == 1
            assert stats["worker_restarts"] == 1
            assert stats["repair_recoveries"] == 1
            assert service.version == 1
            assert service.health()["status"] == "ok"

        asyncio.run(scenario())

    def test_circuit_breaker_escalates_to_full_recompute(self, serving_state):
        """With the breaker threshold at 1, a failed absorb immediately
        escalates: the partition is rebuilt from the live graph and
        published, and the failure streak resets."""
        plan = FaultPlan(faults=(FaultSpec(site="serve.absorb", at=0,
                                           message="absorb failure"),))

        async def scenario():
            service = make_service(serving_state, escalation_threshold=1)
            with inject(plan):
                await service.start()
                try:
                    await service.ingest_churn(0.02, seed=2)
                    await service._queue.join()
                finally:
                    await service.stop()
            stats = service.stats()
            assert stats["batches_failed"] == 1
            assert stats["escalations"] == 1
            assert stats["modes"].get("escalated") == 1
            assert service.version == 1
            health = service.health()
            assert health["status"] == "ok"
            assert health["consecutive_failures"] == 0

        asyncio.run(scenario())

    def test_repeated_crashes_exhaust_restarts_and_degrade(self, serving_state):
        """Past ``max_worker_restarts`` the supervisor gives up: the
        service reports itself degraded with the worker dead, but keeps
        answering lookups."""
        plan = FaultPlan(faults=(FaultSpec(site="serve.repair", at=0,
                                           message="crash"),))

        async def scenario():
            service = make_service(serving_state, max_worker_restarts=0,
                                   drain_seconds=0.2)
            with inject(plan):
                await service.start()
                try:
                    await service.ingest_churn(0.02, seed=3)
                    for _ in range(200):
                        if service._worker_dead:
                            break
                        await asyncio.sleep(0.01)
                    health = service.health()
                    assert health["status"] == "degraded"
                    assert health["worker_alive"] is False
                    parts, _ = service.lookup([0, 1, 2])
                    assert parts.shape == (3,)
                finally:
                    await service.stop()

        asyncio.run(scenario())

    def test_client_timeout_surfaces_as_serve_error(self):
        """A hung server trips the client timeout instead of blocking
        forever; the connection is dropped (stream desync)."""

        async def scenario():
            async def black_hole(reader, writer):
                await asyncio.sleep(30)

            server = await asyncio.start_server(black_hole, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = ServiceClient("127.0.0.1", port, timeout=0.1)
            try:
                await client.connect()
                with pytest.raises(ServeError, match="timed out after 0.1s"):
                    await client.request({"op": "ping"})
                assert client._writer is None  # connection dropped
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_client_timeout_validation(self):
        with pytest.raises(ValueError, match="timeout"):
            ServiceClient("127.0.0.1", 1234, timeout=0.0)

    def test_client_reconnects_after_connection_loss(self, serving_state):
        """call() transparently reconnects once when the connection dies
        under it (server restart / network blip)."""

        async def scenario():
            service = make_service(serving_state)
            server = PartitionServer(service)
            await server.start()
            try:
                client = ServiceClient("127.0.0.1", server.port, timeout=5.0)
                await client.connect()
                assert (await client.call("ping"))["ok"]
                # Kill the transport under the client; the next call must
                # reconnect and succeed rather than surface the breakage.
                client._writer.transport.abort()
                assert (await client.call("ping"))["ok"]
                await client.close()
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_error_replies_raise_serve_error(self, serving_state):
        async def scenario():
            service = make_service(serving_state)
            server = PartitionServer(service)
            await server.start()
            try:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    with pytest.raises(ServeError, match="out of range"):
                        await client.call("lookup", ids=[10**9])
            finally:
                await server.stop()

        asyncio.run(scenario())
