"""Unit tests for the quadratic relaxation, noise schedule, step controller, config."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    GDConfig,
    NoiseSchedule,
    QuadraticRelaxation,
    StepSizeController,
    target_step_length,
)


class TestQuadraticRelaxation:
    def test_objective_matches_bruteforce(self, two_cliques_graph, rng):
        relaxation = QuadraticRelaxation(two_cliques_graph)
        x = rng.uniform(-1, 1, size=two_cliques_graph.num_vertices)
        brute = 0.5 * sum(x[u] * x[v] for u, v in two_cliques_graph.iter_edges()) * 2
        assert np.isclose(relaxation.objective(x), brute)

    def test_gradient_matches_bruteforce(self, triangle_graph):
        relaxation = QuadraticRelaxation(triangle_graph)
        x = np.array([1.0, -1.0, 0.5])
        expected = np.array([x[1] + x[2], x[0] + x[2], x[0] + x[1]])
        assert np.allclose(relaxation.gradient(x), expected)

    def test_integral_solution_objective_counts_uncut_edges(self, two_cliques_graph):
        relaxation = QuadraticRelaxation(two_cliques_graph)
        sides = np.array([1.0] * 5 + [-1.0] * 5)
        # 20 internal edges agree, 1 bridge disagrees: f = (20 - 1) = 19.
        assert np.isclose(relaxation.objective(sides), 19.0)
        assert np.isclose(relaxation.expected_uncut_edges(sides), 19.0 + 21 / 2)

    def test_gradient_step(self, triangle_graph):
        relaxation = QuadraticRelaxation(triangle_graph)
        x = np.array([1.0, 0.0, 0.0])
        stepped = relaxation.gradient_step(x, step_size=0.5)
        assert np.allclose(stepped, x + 0.5 * relaxation.gradient(x))

    def test_zero_vector_is_saddle(self, social_graph):
        relaxation = QuadraticRelaxation(social_graph)
        assert np.allclose(relaxation.gradient(np.zeros(social_graph.num_vertices)), 0.0)


class TestNoiseSchedule:
    def test_noise_only_at_first_iteration(self):
        schedule = NoiseSchedule(100, std=0.1, rng=np.random.default_rng(0))
        assert np.any(schedule.sample(0) != 0)
        assert np.all(schedule.sample(1) == 0)
        assert np.all(schedule.sample(5) == 0)

    def test_noise_every_iteration(self):
        schedule = NoiseSchedule(50, std=0.1, every_iteration=True,
                                 rng=np.random.default_rng(0))
        assert np.any(schedule.sample(3) != 0)

    def test_default_std_scales_with_n(self):
        assert NoiseSchedule(100).std == pytest.approx(0.1)
        assert NoiseSchedule(10000).std == pytest.approx(0.01)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            NoiseSchedule(-1)
        with pytest.raises(ValueError):
            NoiseSchedule(10, std=-0.5)


class TestStepSizeController:
    def test_target_step_length_formula(self):
        assert target_step_length(10000, 100, factor=2.0) == pytest.approx(2.0)

    def test_first_step_normalizes_gradient(self):
        controller = StepSizeController(target_length=1.0, adaptive=True)
        gradient = np.array([3.0, 4.0])  # norm 5
        assert controller.step_size(gradient) == pytest.approx(0.2)

    def test_adaptive_update_increases_when_short(self):
        controller = StepSizeController(target_length=1.0, adaptive=True)
        gamma0 = controller.step_size(np.array([1.0]))
        controller.update(realized_length=0.25)  # realized 4x too short
        assert controller.step_size(np.array([1.0])) > gamma0

    def test_adaptive_update_decreases_when_long(self):
        controller = StepSizeController(target_length=1.0, adaptive=True)
        gamma0 = controller.step_size(np.array([1.0]))
        controller.update(realized_length=4.0)
        assert controller.step_size(np.array([1.0])) < gamma0

    def test_nonadaptive_keeps_gamma(self):
        controller = StepSizeController(target_length=1.0, adaptive=False)
        gamma0 = controller.step_size(np.array([2.0]))
        controller.update(realized_length=0.01)
        assert controller.step_size(np.array([2.0])) == gamma0

    def test_zero_realized_pushes_harder(self):
        controller = StepSizeController(target_length=1.0, adaptive=True)
        gamma0 = controller.step_size(np.array([1.0]))
        controller.update(realized_length=0.0)
        assert controller.step_size(np.array([1.0])) == pytest.approx(2.0 * gamma0)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            StepSizeController(target_length=0.0)
        with pytest.raises(ValueError):
            target_step_length(100, 0)


class TestGDConfig:
    def test_defaults_valid(self):
        config = GDConfig()
        assert config.iterations == 100
        assert config.projection_method == "alternating_oneshot"

    def test_with_updates(self):
        config = GDConfig().with_updates(iterations=10, projection_method="exact")
        assert config.iterations == 10
        assert config.projection_method == "exact"

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            GDConfig(iterations=0)

    def test_invalid_projection(self):
        with pytest.raises(ValueError):
            GDConfig(projection_method="magic")

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            GDConfig(fixing_threshold=0.0)
        with pytest.raises(ValueError):
            GDConfig(fixing_threshold=1.5)

    def test_invalid_step_factor(self):
        with pytest.raises(ValueError):
            GDConfig(step_length_factor=0.0)

    def test_invalid_projection_epsilon(self):
        with pytest.raises(ValueError):
            GDConfig(projection_epsilon=0.0)

    def test_invalid_fixing_fraction(self):
        with pytest.raises(ValueError):
            GDConfig(fixing_start_fraction=1.5)

    def test_invalid_final_rounds(self):
        with pytest.raises(ValueError):
            GDConfig(final_projection_rounds=-1)
