"""End-to-end integration tests reproducing the paper's headline claims in miniature."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import HashPartitioner, SpinnerPartitioner
from repro.core import GDConfig, GDPartitioner
from repro.distributed import GiraphCluster, PageRank
from repro.graphs import livejournal_like, standard_weights, twitter_like
from repro.partition import edge_locality, is_epsilon_balanced, max_imbalance


@pytest.fixture(scope="module")
def twitter_graph():
    return twitter_like(scale=0.3, seed=1)


@pytest.fixture(scope="module")
def lj_graph_module():
    return livejournal_like(scale=0.3, seed=1)


class TestHeadlineClaims:
    def test_gd_balanced_and_local_multi_dimensional(self, twitter_graph):
        """GD achieves near-perfect 2-D balance with high locality (§4.1)."""
        weights = standard_weights(twitter_graph, 2)
        partitioner = GDPartitioner(epsilon=0.05, config=GDConfig(iterations=60, seed=0))
        partition = partitioner.partition(twitter_graph, weights, num_parts=8)
        assert is_epsilon_balanced(partition, weights, epsilon=0.06)
        hash_partition = HashPartitioner().partition(twitter_graph, weights, 8)
        assert edge_locality(partition) > edge_locality(hash_partition) + 20

    def test_spinner_cannot_balance_both_dimensions(self, twitter_graph):
        """Spinner leaves one dimension imbalanced on skewed graphs (Fig. 4)."""
        weights = standard_weights(twitter_graph, 2)
        spinner = SpinnerPartitioner(seed=0).partition(twitter_graph, weights, 8)
        gd = GDPartitioner(epsilon=0.05, config=GDConfig(iterations=60, seed=0)).partition(
            twitter_graph, weights, 8)
        assert max_imbalance(gd, weights) < max_imbalance(spinner, weights)

    def test_gd_handles_four_dimensions(self, lj_graph_module):
        """GD stays balanced with d = 4 unrelated weights (Table 3)."""
        weights = standard_weights(lj_graph_module, 4)
        partitioner = GDPartitioner(epsilon=0.05, config=GDConfig(iterations=60, seed=0))
        partition = partitioner.partition(lj_graph_module, weights, num_parts=2)
        assert max_imbalance(partition, weights) < 0.06
        assert edge_locality(partition) > 60.0

    def test_vertex_edge_partitioning_speeds_up_pagerank(self, lj_graph_module):
        """2-D balanced placement beats hash placement end to end (Fig. 7)."""
        weights = standard_weights(lj_graph_module, 2)
        num_workers = 8
        cluster = GiraphCluster(num_workers=num_workers)
        program = PageRank(supersteps=3)

        hash_placement = HashPartitioner().partition(lj_graph_module, weights, num_workers)
        gd_placement = GDPartitioner(
            epsilon=0.05, config=GDConfig(iterations=40, seed=0)).partition(
            lj_graph_module, weights, num_workers)

        hash_report = cluster.run_job(lj_graph_module, hash_placement, program)
        gd_report = cluster.run_job(lj_graph_module, gd_placement, program)
        assert gd_report.total_runtime < hash_report.total_runtime
        assert (gd_report.total_communication_bytes
                < hash_report.total_communication_bytes)

    def test_pagerank_output_independent_of_placement(self, lj_graph_module):
        """The simulator changes cost accounting, never application results."""
        weights = standard_weights(lj_graph_module, 2)
        cluster = GiraphCluster(num_workers=4)
        program = PageRank(supersteps=5)
        placements = [
            HashPartitioner(salt=s).partition(lj_graph_module, weights, 4) for s in (0, 1)
        ]
        outputs = [cluster.run_job(lj_graph_module, p, program).output for p in placements]
        assert np.allclose(outputs[0], outputs[1])

    def test_gd_scales_roughly_linearly(self):
        """Doubling |E| roughly doubles GD runtime (Fig. 11)."""
        from repro.core import gd_bisect
        from repro.graphs import fb_like

        times = []
        edges = []
        for scale in (0.5, 2.0):
            graph = fb_like(80, scale=scale, seed=0)
            weights = standard_weights(graph, 2)
            result = gd_bisect(graph, weights, 0.05, GDConfig(iterations=20, seed=0))
            times.append(result.elapsed_seconds)
            edges.append(graph.num_edges)
        ratio = (times[1] / times[0]) / (edges[1] / edges[0])
        # Allow generous slack: constant overheads dominate at tiny sizes.
        assert ratio < 6.0
